// Package diskmodel implements the multi-speed disk used by the Hibernator
// reproduction: a mechanical timing model (seek, rotation, transfer as a
// function of spindle speed) joined to a power model (per-level idle and
// active power, standby, spin-up/-down and inter-level transitions).
//
// The default parameters derive from the IBM Ultrastar 36Z15, the drive the
// DRPM line of work (Gurumurthi et al., ISCA'03) and Hibernator modeled,
// extended to multiple RPM levels with spindle power scaling ~ RPM^2.8.
package diskmodel

import (
	"fmt"
	"math"
)

// Spec describes one disk model. All times are seconds, powers watts,
// energies joules, sizes bytes.
type Spec struct {
	Name          string
	CapacityBytes int64

	// RPM lists the supported spindle speeds in ascending order; the last
	// entry is full speed. A conventional single-speed disk has one entry.
	RPM []int

	// IdlePower[i] is drawn while spinning at RPM[i] with no I/O in
	// flight; ActivePower[i] while seeking/transferring at RPM[i].
	IdlePower   []float64
	ActivePower []float64

	// StandbyPower is drawn with the spindle stopped.
	StandbyPower float64

	// Spin-up is standby -> full speed; spin-down the reverse.
	SpinUpTime     float64
	SpinUpEnergy   float64
	SpinDownTime   float64
	SpinDownEnergy float64

	// Changing spindle speed while spinning costs time and energy
	// proportional to the RPM change.
	LevelShiftTimePer1000RPM   float64
	LevelShiftEnergyPer1000RPM float64

	// Seek model: time = SeekMin + (SeekMax-SeekMin)*sqrt(frac) where frac
	// is the seek distance as a fraction of the full stroke. SeekMin covers
	// head settle; a zero-distance access pays no seek.
	SeekMin float64
	SeekMax float64

	// TransferRate[i] is the sustained media rate at RPM[i], bytes/second.
	TransferRate []float64

	// ControllerOverhead is added to every request's service time.
	ControllerOverhead float64
}

// Validate returns an error describing the first inconsistency found.
func (s *Spec) Validate() error {
	n := len(s.RPM)
	switch {
	case n == 0:
		return fmt.Errorf("diskmodel: spec %q has no RPM levels", s.Name)
	case len(s.IdlePower) != n || len(s.ActivePower) != n || len(s.TransferRate) != n:
		return fmt.Errorf("diskmodel: spec %q has %d RPM levels but %d/%d/%d idle/active/transfer entries",
			s.Name, n, len(s.IdlePower), len(s.ActivePower), len(s.TransferRate))
	case s.CapacityBytes <= 0:
		return fmt.Errorf("diskmodel: spec %q has non-positive capacity", s.Name)
	case s.SeekMin < 0 || s.SeekMax < s.SeekMin:
		return fmt.Errorf("diskmodel: spec %q has invalid seek range [%v,%v]", s.Name, s.SeekMin, s.SeekMax)
	case s.SpinUpTime <= 0 || s.SpinDownTime <= 0:
		return fmt.Errorf("diskmodel: spec %q needs positive spin transition times", s.Name)
	}
	for i := 1; i < n; i++ {
		if s.RPM[i] <= s.RPM[i-1] {
			return fmt.Errorf("diskmodel: spec %q RPM levels must strictly ascend", s.Name)
		}
	}
	for i := 0; i < n; i++ {
		if s.RPM[i] <= 0 || s.IdlePower[i] <= 0 || s.ActivePower[i] < s.IdlePower[i] || s.TransferRate[i] <= 0 {
			return fmt.Errorf("diskmodel: spec %q level %d has invalid rpm/power/rate", s.Name, i)
		}
	}
	if n > 1 && (s.LevelShiftTimePer1000RPM <= 0 || s.LevelShiftEnergyPer1000RPM < 0) {
		return fmt.Errorf("diskmodel: multi-speed spec %q needs positive level-shift time", s.Name)
	}
	return nil
}

// Levels returns the number of RPM levels.
func (s *Spec) Levels() int { return len(s.RPM) }

// FullLevel returns the index of the highest speed.
func (s *Spec) FullLevel() int { return len(s.RPM) - 1 }

// RotationPeriod returns one revolution's duration at the given level.
func (s *Spec) RotationPeriod(level int) float64 {
	return 60.0 / float64(s.RPM[level])
}

// SeekTime returns the seek time for a stroke covering `frac` of the LBA
// span (0 <= frac <= 1).
func (s *Spec) SeekTime(frac float64) float64 {
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	return s.SeekMin + (s.SeekMax-s.SeekMin)*math.Sqrt(frac)
}

// TransferTime returns how long `size` bytes take at the given level.
func (s *Spec) TransferTime(level int, size int64) float64 {
	return float64(size) / s.TransferRate[level]
}

// LevelShift returns the time and energy to move between two levels while
// spinning; both scale with the RPM distance covered, so a full swing
// costs the same regardless of how many intermediate levels exist.
func (s *Spec) LevelShift(from, to int) (seconds, joules float64) {
	delta := float64(s.RPM[from] - s.RPM[to])
	if delta < 0 {
		delta = -delta
	}
	return delta / 1000 * s.LevelShiftTimePer1000RPM, delta / 1000 * s.LevelShiftEnergyPer1000RPM
}

// ServiceMoments estimates the first and second moments of the service
// time at a level for a random-access workload with mean request size
// avgSize and mean seek fraction seekFrac. The CR optimizer and the DRPM
// baseline feed these into M/G/1 response-time predictions.
//
// Model: S = overhead + seek(seekFrac) + U(0, rot) + transfer(avgSize).
// Seek and transfer are treated as deterministic at their means, so the
// variance comes from rotational latency: Var = rot^2/12.
func (s *Spec) ServiceMoments(level int, avgSize int64, seekFrac float64) (es, es2 float64) {
	rot := s.RotationPeriod(level)
	es = s.ControllerOverhead + s.SeekTime(seekFrac) + rot/2 + s.TransferTime(level, avgSize)
	variance := rot * rot / 12
	es2 = variance + es*es
	return es, es2
}

// ExpectedSeekFrac is the mean seek distance (as a stroke fraction)
// between two uniformly random positions: E|X-Y| = 1/3.
const ExpectedSeekFrac = 1.0 / 3.0

// MultiSpeedUltrastar builds an n-level multi-speed disk modeled on the
// IBM Ultrastar 36Z15 (36.7 GB, 15 000 RPM, 10.2 W idle, 13.5 W active,
// 2.5 W standby, 10.9 s / 135 J spin-up, 1.5 s / 13 J spin-down), with
// levels evenly spaced from minRPM to 15 000 RPM.
//
// Scaling laws, following the DRPM modeling methodology:
//   - spindle idle power ∝ RPM^2.8 above a 1.4 W electronics floor
//   - active power keeps the full-speed active/idle delta (seek energy is
//     dominated by the arm, not the spindle)
//   - media transfer rate ∝ RPM (fixed areal density)
func MultiSpeedUltrastar(levels int, minRPM int) Spec {
	if levels < 1 {
		panic(fmt.Sprintf("diskmodel: need at least one level, got %d", levels))
	}
	const (
		fullRPM        = 15000
		fullIdle       = 10.2
		fullActive     = 13.5
		electronics    = 1.4
		fullRate       = 55e6 // bytes/s sustained
		capacity       = 36_700_000_000
		standby        = 2.5
		spinUpTime     = 10.9
		spinUpEnergy   = 135.0
		spinDownTime   = 1.5
		spinDownEnergy = 13.0
	)
	if levels > 1 && (minRPM <= 0 || minRPM >= fullRPM) {
		panic(fmt.Sprintf("diskmodel: minRPM %d outside (0, %d)", minRPM, fullRPM))
	}
	rpm := make([]int, levels)
	if levels == 1 {
		rpm[0] = fullRPM
	} else {
		step := float64(fullRPM-minRPM) / float64(levels-1)
		for i := range rpm {
			rpm[i] = minRPM + int(math.Round(step*float64(i)))
		}
		rpm[levels-1] = fullRPM
	}
	idle := make([]float64, levels)
	active := make([]float64, levels)
	rate := make([]float64, levels)
	spindleFull := fullIdle - electronics
	activeDelta := fullActive - fullIdle
	for i, r := range rpm {
		ratio := float64(r) / fullRPM
		idle[i] = electronics + spindleFull*math.Pow(ratio, 2.8)
		active[i] = idle[i] + activeDelta
		rate[i] = fullRate * ratio
	}
	return Spec{
		Name:                       fmt.Sprintf("ultrastar36z15-%dspeed", levels),
		CapacityBytes:              capacity,
		RPM:                        rpm,
		IdlePower:                  idle,
		ActivePower:                active,
		StandbyPower:               standby,
		SpinUpTime:                 spinUpTime,
		SpinUpEnergy:               spinUpEnergy,
		SpinDownTime:               spinDownTime,
		SpinDownEnergy:             spinDownEnergy,
		LevelShiftTimePer1000RPM:   1.0 / 3.0, // 1 s per 3000 RPM step, 4 s full swing
		LevelShiftEnergyPer1000RPM: 4.0 / 3.0,
		SeekMin:                    0.0006,
		SeekMax:                    0.0065,
		TransferRate:               rate,
		ControllerOverhead:         0.0002,
	}
}

// SingleSpeedUltrastar is the conventional (non-multi-speed) variant used
// by Base, TPM, PDC and MAID.
func SingleSpeedUltrastar() Spec {
	return MultiSpeedUltrastar(1, 0)
}

// MultiSpeedSFF builds a small-form-factor (2.5", laptop/nearline class)
// multi-speed disk: lower absolute power, slower mechanics, much cheaper
// spin transitions. Modeled loosely on a Hitachi Travelstar-class drive
// scaled the same way as MultiSpeedUltrastar. Useful for sensitivity
// studies: the energy/performance trade-off sits at a different point, so
// CR picks different tiers.
func MultiSpeedSFF(levels int, minRPM int) Spec {
	if levels < 1 {
		panic(fmt.Sprintf("diskmodel: need at least one level, got %d", levels))
	}
	const (
		fullRPM     = 5400
		fullIdle    = 1.8
		fullActive  = 2.6
		electronics = 0.5
		fullRate    = 30e6
		capacity    = 60_000_000_000
	)
	if levels > 1 && (minRPM <= 0 || minRPM >= fullRPM) {
		panic(fmt.Sprintf("diskmodel: minRPM %d outside (0, %d)", minRPM, fullRPM))
	}
	rpm := make([]int, levels)
	if levels == 1 {
		rpm[0] = fullRPM
	} else {
		step := float64(fullRPM-minRPM) / float64(levels-1)
		for i := range rpm {
			rpm[i] = minRPM + int(math.Round(step*float64(i)))
		}
		rpm[levels-1] = fullRPM
	}
	idle := make([]float64, levels)
	active := make([]float64, levels)
	rate := make([]float64, levels)
	spindleFull := fullIdle - electronics
	activeDelta := fullActive - fullIdle
	for i, r := range rpm {
		ratio := float64(r) / fullRPM
		idle[i] = electronics + spindleFull*math.Pow(ratio, 2.8)
		active[i] = idle[i] + activeDelta
		rate[i] = fullRate * ratio
	}
	return Spec{
		Name:                       fmt.Sprintf("sff-%dspeed", levels),
		CapacityBytes:              capacity,
		RPM:                        rpm,
		IdlePower:                  idle,
		ActivePower:                active,
		StandbyPower:               0.25,
		SpinUpTime:                 3.5,
		SpinUpEnergy:               12,
		SpinDownTime:               0.8,
		SpinDownEnergy:             2,
		LevelShiftTimePer1000RPM:   0.5,
		LevelShiftEnergyPer1000RPM: 0.6,
		SeekMin:                    0.0015,
		SeekMax:                    0.012,
		TransferRate:               rate,
		ControllerOverhead:         0.0003,
	}
}
