package diskmodel

import (
	"math/rand"
	"testing"

	"hibernator/internal/simevent"
)

func schedDisk(t *testing.T, sched Scheduler) (*simevent.Engine, *Disk) {
	t.Helper()
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d := New(e, &spec, Config{Seed: 3, ExpectedRotLatency: true, Scheduler: sched})
	return e, d
}

func TestSPTFPicksNearestRequest(t *testing.T) {
	e, d := schedDisk(t, SPTF)
	var order []string
	// Occupy the disk, then queue far and near requests; SPTF must take
	// the near one first even though it arrived last.
	d.Submit(&Request{LBA: 0, Size: 1 << 20, Done: func(*Request, float64) { order = append(order, "first") }})
	d.Submit(&Request{LBA: 30 << 30, Size: 4096, Done: func(*Request, float64) { order = append(order, "far") }})
	d.Submit(&Request{LBA: 2 << 20, Size: 4096, Done: func(*Request, float64) { order = append(order, "near") }})
	e.RunAll()
	want := []string{"first", "near", "far"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	e, d := schedDisk(t, FCFS)
	var order []string
	d.Submit(&Request{LBA: 0, Size: 1 << 20, Done: func(*Request, float64) { order = append(order, "first") }})
	d.Submit(&Request{LBA: 30 << 30, Size: 4096, Done: func(*Request, float64) { order = append(order, "far") }})
	d.Submit(&Request{LBA: 2 << 20, Size: 4096, Done: func(*Request, float64) { order = append(order, "near") }})
	e.RunAll()
	want := []string{"first", "far", "near"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// SPTF must reduce total seek work (busy time) on a random backlog.
func TestSPTFBeatsFCFSOnBacklog(t *testing.T) {
	run := func(sched Scheduler) float64 {
		e, d := schedDisk(t, sched)
		rng := rand.New(rand.NewSource(11))
		n := 0
		for i := 0; i < 200; i++ {
			d.Submit(&Request{
				LBA:  rng.Int63n(d.Spec().CapacityBytes - 4096),
				Size: 4096,
				Done: func(*Request, float64) { n++ },
			})
		}
		e.RunAll()
		if n != 200 {
			t.Fatalf("completed %d of 200", n)
		}
		return d.BusyTime()
	}
	fcfs, sptf := run(FCFS), run(SPTF)
	if sptf >= fcfs {
		t.Errorf("SPTF busy time %v should beat FCFS %v on a deep random backlog", sptf, fcfs)
	}
}

func TestSPTFCompletesEverythingUnderLoad(t *testing.T) {
	// No request may be lost even with continuous arrivals (starvation is
	// possible in principle but the backlog drains here).
	e, d := schedDisk(t, SPTF)
	rng := rand.New(rand.NewSource(13))
	n := 0
	for i := 0; i < 500; i++ {
		at := float64(i) * 0.002
		lba := rng.Int63n(d.Spec().CapacityBytes - 4096)
		e.At(at, func() {
			d.Submit(&Request{LBA: lba, Size: 4096, Done: func(*Request, float64) { n++ }})
		})
	}
	e.RunAll()
	if n != 500 {
		t.Fatalf("completed %d of 500 under SPTF", n)
	}
}
