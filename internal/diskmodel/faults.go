package diskmodel

import (
	"fmt"
	"math/rand"
)

// This file holds the per-disk fault models: transient media errors,
// latent sector errors pinned to LBA ranges, fail-slow degradation, and
// spin-up failure with bounded retry. All randomness comes from a
// dedicated fault RNG (seeded from the disk's seed), so enabling a fault
// on one disk never perturbs the service-time draws of any disk, and a
// disk with no fault configured performs zero random draws — the fault
// machinery is a strict no-op until armed.

// LBARange is a half-open byte range [Lo, Hi) on one disk.
type LBARange struct {
	Lo, Hi int64
}

// faultState carries every armed fault model of one disk. It is nil until
// the first fault is configured.
type faultState struct {
	rng *rand.Rand

	// transientProb is the per-operation probability that the op consumes
	// its full service time and then fails with a retryable error.
	transientProb float64

	// latent holds unreadable LBA ranges. Reads intersecting one fail
	// deterministically; a write overlapping a range repairs it (sector
	// remap on write), clearing the range.
	latent []LBARange

	// Fail-slow: service times are multiplied by a factor that ramps
	// linearly from 1 at slowStart to slowMax at slowStart+slowRamp.
	slowStart float64
	slowRamp  float64
	slowMax   float64
	slowSet   bool

	// Spin-up failure: each spin-up attempt fails with spinFailProb; after
	// spinRetries failed retries (so spinRetries+1 attempts) the disk is
	// declared dead.
	spinFailProb float64
	spinRetries  int

	transientErrs uint64
	latentErrs    uint64
	spinFailures  uint64

	// draws counts consumptions of the fault RNG stream. Snapshots record
	// it as the stream position: because the stream is a pure function of
	// (seed, draws), equal draw counts at equal seeds mean the generators
	// will produce identical futures.
	draws uint64
}

// faults lazily allocates the fault state with its dedicated RNG.
func (d *Disk) faultState() *faultState {
	if d.faults == nil {
		// Decorrelate from the service-time RNG but stay seed-deterministic.
		d.faults = &faultState{rng: rand.New(rand.NewSource(d.cfg.Seed ^ 0x5deece66d))}
	}
	return d.faults
}

// SetTransientErrorProb arms (or, with p <= 0, disarms) transient media
// errors: each operation independently fails with probability p after
// consuming its full service time. Failed operations set Request.Errored;
// the upper layer decides whether to retry.
func (d *Disk) SetTransientErrorProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if d.faults == nil && p == 0 {
		return
	}
	d.faultState().transientProb = p
}

// TransientErrorProb returns the armed per-op error probability.
func (d *Disk) TransientErrorProb() float64 {
	if d.faults == nil {
		return 0
	}
	return d.faults.transientProb
}

// AddLatentRange pins a latent sector error onto [lo, hi): reads touching
// it fail deterministically until a write overlaps the range, which
// repairs it (models sector reallocation on write).
func (d *Disk) AddLatentRange(lo, hi int64) {
	if lo < 0 || hi <= lo {
		panic(fmt.Sprintf("diskmodel: invalid latent range [%d,%d)", lo, hi))
	}
	fs := d.faultState()
	fs.latent = append(fs.latent, LBARange{Lo: lo, Hi: hi})
}

// LatentRanges returns the currently unreadable ranges.
func (d *Disk) LatentRanges() []LBARange {
	if d.faults == nil {
		return nil
	}
	return append([]LBARange(nil), d.faults.latent...)
}

// SetFailSlow arms fail-slow degradation: from `start` (absolute
// simulated time) the disk's positioning and transfer times are scaled by
// a factor ramping linearly from 1 to `max` over `ramp` seconds (ramp 0
// applies the full factor at start). max <= 1 disarms.
func (d *Disk) SetFailSlow(start, ramp, max float64) {
	if max <= 1 {
		if d.faults != nil {
			d.faults.slowSet = false
		}
		return
	}
	fs := d.faultState()
	fs.slowStart, fs.slowRamp, fs.slowMax = start, ramp, max
	fs.slowSet = true
}

// SlowFactor returns the fail-slow service-time multiplier in force at
// the current simulated time (1 when healthy).
func (d *Disk) SlowFactor() float64 {
	fs := d.faults
	if fs == nil || !fs.slowSet {
		return 1
	}
	now := d.now()
	if now < fs.slowStart {
		return 1
	}
	if fs.slowRamp <= 0 || now >= fs.slowStart+fs.slowRamp {
		return fs.slowMax
	}
	return 1 + (fs.slowMax-1)*(now-fs.slowStart)/fs.slowRamp
}

// SetSpinUpFailure arms spin-up failure: each spin-up attempt fails with
// probability p (still paying the full spin-up time and energy); after
// `retries` failed retries the disk gives up and transitions to Failed.
func (d *Disk) SetSpinUpFailure(p float64, retries int) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if retries < 0 {
		retries = 0
	}
	if d.faults == nil && p == 0 {
		return
	}
	fs := d.faultState()
	fs.spinFailProb = p
	fs.spinRetries = retries
}

// TransientErrors counts operations failed by the transient model.
func (d *Disk) TransientErrors() uint64 {
	if d.faults == nil {
		return 0
	}
	return d.faults.transientErrs
}

// LatentErrors counts reads failed by latent sector ranges.
func (d *Disk) LatentErrors() uint64 {
	if d.faults == nil {
		return 0
	}
	return d.faults.latentErrs
}

// SpinUpFailures counts failed spin-up attempts.
func (d *Disk) SpinUpFailures() uint64 {
	if d.faults == nil {
		return 0
	}
	return d.faults.spinFailures
}

// faultOutcome decides, at completion time, whether the finished request
// failed. Write repairs of latent ranges happen here too. The no-fault
// path performs no draws.
func (d *Disk) faultOutcome(r *Request) bool {
	fs := d.faults
	if fs == nil {
		return false
	}
	errored := false
	if len(fs.latent) > 0 {
		if r.Write {
			// A write overlapping a latent range repairs it.
			kept := fs.latent[:0]
			for _, lr := range fs.latent {
				if r.LBA < lr.Hi && r.LBA+r.Size > lr.Lo {
					continue
				}
				kept = append(kept, lr)
			}
			fs.latent = kept
		} else {
			for _, lr := range fs.latent {
				if r.LBA < lr.Hi && r.LBA+r.Size > lr.Lo {
					fs.latentErrs++
					errored = true
					break
				}
			}
		}
	}
	if fs.transientProb > 0 {
		fs.draws++
		if fs.rng.Float64() < fs.transientProb {
			fs.transientErrs++
			errored = true
		}
	}
	return errored
}

// spinUpFails draws one spin-up attempt outcome (true = attempt failed).
func (d *Disk) spinUpFails() bool {
	fs := d.faults
	if fs == nil || fs.spinFailProb == 0 {
		return false
	}
	fs.draws++
	if fs.rng.Float64() < fs.spinFailProb {
		fs.spinFailures++
		return true
	}
	return false
}

// FaultRNGDraws reports the fault RNG's stream position: how many draws
// the disk's fault models have consumed (0 when no fault is armed).
func (d *Disk) FaultRNGDraws() uint64 {
	if d.faults == nil {
		return 0
	}
	return d.faults.draws
}
