package diskmodel

import (
	"math/rand"
	"testing"

	"hibernator/internal/simevent"
)

// BenchmarkDiskServiceThroughput measures raw event-processing speed of
// the disk model: random 8 KiB requests through a single full-speed disk.
func BenchmarkDiskServiceThroughput(b *testing.B) {
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d := New(e, &spec, Config{Seed: 1, ExpectedRotLatency: true})
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&Request{
			LBA:  rng.Int63n(spec.CapacityBytes - 8192),
			Size: 8192,
			Done: func(*Request, float64) {},
		})
		if d.QueueLen() > 64 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// BenchmarkDiskSPTFQueue measures the SPTF scan cost at a deep queue.
func BenchmarkDiskSPTFQueue(b *testing.B) {
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d := New(e, &spec, Config{Seed: 1, ExpectedRotLatency: true, Scheduler: SPTF})
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(&Request{
			LBA:  rng.Int63n(spec.CapacityBytes - 8192),
			Size: 8192,
			Done: func(*Request, float64) {},
		})
		if d.QueueLen() > 256 {
			e.RunAll()
		}
	}
	e.RunAll()
}

// BenchmarkSpecServiceMoments measures the analytic model used inside the
// CR composition loop.
func BenchmarkSpecServiceMoments(b *testing.B) {
	spec := MultiSpeedUltrastar(5, 3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec.ServiceMoments(i%5, 8192, ExpectedSeekFrac)
	}
}
