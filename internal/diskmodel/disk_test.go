package diskmodel

import (
	"math"
	"testing"

	"hibernator/internal/simevent"
)

func testDisk(t *testing.T, levels int) (*simevent.Engine, *Disk, *Spec) {
	t.Helper()
	e := simevent.New()
	spec := MultiSpeedUltrastar(levels, 3000)
	d := New(e, &spec, Config{ID: 0, Seed: 1, InitialLevel: spec.FullLevel(), ExpectedRotLatency: true})
	return e, d, &spec
}

func submit(d *Disk, lba, size int64, write bool, done *[]float64) {
	d.Submit(&Request{LBA: lba, Size: size, Write: write, Done: func(_ *Request, at float64) {
		*done = append(*done, at)
	}})
}

func TestSingleRequestServiceTime(t *testing.T) {
	e, d, spec := testDisk(t, 1)
	var done []float64
	submit(d, 0, 8192, false, &done)
	e.RunAll()
	if len(done) != 1 {
		t.Fatalf("completed %d requests, want 1", len(done))
	}
	// Head starts at 0, request at 0: strictly sequential, so no seek and
	// no rotational latency — just overhead + transfer.
	want := spec.ControllerOverhead + spec.TransferTime(0, 8192)
	if math.Abs(done[0]-want) > 1e-12 {
		t.Errorf("completion at %v, want %v", done[0], want)
	}
	if d.Completed() != 1 {
		t.Errorf("Completed = %d", d.Completed())
	}
	if d.State() != Idle {
		t.Errorf("state = %v, want Idle", d.State())
	}
}

func TestFIFOWithinForeground(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(&Request{LBA: int64(i) * 1 << 20, Size: 4096, Done: func(_ *Request, _ float64) {
			order = append(order, i)
		}})
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v not FIFO", order)
		}
	}
}

func TestBackgroundYieldsToForeground(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	var order []string
	// Occupy the disk, then queue one background and one foreground request
	// while busy. The foreground one must be served first.
	d.Submit(&Request{LBA: 0, Size: 1 << 20, Done: func(_ *Request, _ float64) { order = append(order, "first") }})
	d.Submit(&Request{LBA: 0, Size: 4096, Background: true, Done: func(_ *Request, _ float64) { order = append(order, "bg") }})
	d.Submit(&Request{LBA: 0, Size: 4096, Done: func(_ *Request, _ float64) { order = append(order, "fg") }})
	e.RunAll()
	if len(order) != 3 || order[0] != "first" || order[1] != "fg" || order[2] != "bg" {
		t.Fatalf("order = %v, want [first fg bg]", order)
	}
	if d.BackgroundCompleted() != 1 {
		t.Errorf("BackgroundCompleted = %d, want 1", d.BackgroundCompleted())
	}
}

func TestStandbyAndAutoWake(t *testing.T) {
	e, d, spec := testDisk(t, 1)
	if !d.Standby() {
		t.Fatal("idle disk should accept Standby")
	}
	if d.State() != SpinningDown {
		t.Fatalf("state = %v, want SpinningDown", d.State())
	}
	e.Run(spec.SpinDownTime + 0.001)
	if d.State() != Standby {
		t.Fatalf("state = %v, want Standby", d.State())
	}
	var done []float64
	submit(d, 0, 4096, false, &done)
	if d.State() != SpinningUp {
		t.Fatalf("state after submit = %v, want SpinningUp", d.State())
	}
	e.RunAll()
	if len(done) != 1 {
		t.Fatal("request lost across spin-up")
	}
	// Completion must include the spin-up wait.
	if done[0] < spec.SpinDownTime+spec.SpinUpTime {
		t.Errorf("completion at %v precedes spin-up end", done[0])
	}
	if d.SpinUps() != 1 || d.SpinDowns() != 1 {
		t.Errorf("spinUps=%d spinDowns=%d, want 1,1", d.SpinUps(), d.SpinDowns())
	}
}

func TestSubmitDuringSpinDownWakes(t *testing.T) {
	e, d, spec := testDisk(t, 1)
	d.Standby()
	var done []float64
	// Arrives mid-spin-down.
	e.Schedule(spec.SpinDownTime/2, func() { submit(d, 0, 4096, false, &done) })
	e.RunAll()
	if len(done) != 1 {
		t.Fatal("request lost when submitted during spin-down")
	}
	if done[0] < spec.SpinDownTime+spec.SpinUpTime {
		t.Errorf("completion %v should wait for full spin-down+up", done[0])
	}
}

func TestStandbyRefusedWhenBusy(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	var done []float64
	submit(d, 0, 1<<20, false, &done)
	if d.Standby() {
		t.Fatal("busy disk must refuse Standby")
	}
	e.RunAll()
	if len(done) != 1 {
		t.Fatal("request lost")
	}
}

func TestProactiveSpinUp(t *testing.T) {
	e, d, spec := testDisk(t, 1)
	d.Standby()
	e.Run(spec.SpinDownTime + 1)
	d.SpinUp()
	if d.State() != SpinningUp {
		t.Fatalf("state = %v, want SpinningUp", d.State())
	}
	e.RunAll()
	if d.State() != Idle {
		t.Fatalf("state = %v, want Idle", d.State())
	}
}

func TestSpeedShiftWhileIdle(t *testing.T) {
	e, d, spec := testDisk(t, 5)
	full := spec.FullLevel()
	d.SetTargetLevel(0)
	if d.State() != ShiftingSpeed {
		t.Fatalf("state = %v, want ShiftingSpeed", d.State())
	}
	wantDur, _ := spec.LevelShift(full, 0)
	e.Run(wantDur + 1e-9)
	if d.Level() != 0 || d.State() != Idle {
		t.Fatalf("level=%d state=%v, want 0, Idle", d.Level(), d.State())
	}
	if d.LevelShifts() != 1 {
		t.Errorf("LevelShifts = %d, want 1", d.LevelShifts())
	}
}

func TestSpeedShiftDeferredWhileBusy(t *testing.T) {
	e, d, spec := testDisk(t, 5)
	var done []float64
	submit(d, 0, 1<<20, false, &done) // long transfer
	d.SetTargetLevel(1)
	if d.State() != Busy {
		t.Fatal("shift must not preempt the in-flight request")
	}
	// Queue another request: it must wait out the shift and be served at
	// the new, slower level.
	submit(d, 0, 1<<20, false, &done)
	e.RunAll()
	if len(done) != 2 {
		t.Fatalf("completed %d, want 2", len(done))
	}
	if d.Level() != 1 {
		t.Fatalf("level = %d, want 1", d.Level())
	}
	shiftDur, _ := spec.LevelShift(spec.FullLevel(), 1)
	gap := done[1] - done[0]
	if gap < shiftDur {
		t.Errorf("second completion gap %v should include shift %v", gap, shiftDur)
	}
}

func TestShiftTargetChangedMidShift(t *testing.T) {
	e, d, spec := testDisk(t, 5)
	d.SetTargetLevel(0)
	// Halfway through the long downshift, change our mind to level 3.
	halfway, _ := spec.LevelShift(spec.FullLevel(), 0)
	e.Run(halfway / 2)
	d.SetTargetLevel(3)
	e.RunAll()
	if d.Level() != 3 {
		t.Fatalf("level = %d, want 3 after redirected shift", d.Level())
	}
	if d.LevelShifts() != 2 {
		t.Errorf("LevelShifts = %d, want 2 (original + correction)", d.LevelShifts())
	}
}

func TestServiceSlowerAtLowSpeed(t *testing.T) {
	run := func(level int) float64 {
		e := simevent.New()
		spec := MultiSpeedUltrastar(5, 3000)
		d := New(e, &spec, Config{Seed: 1, InitialLevel: level, ExpectedRotLatency: true})
		var done []float64
		for i := 0; i < 10; i++ {
			d.Submit(&Request{LBA: int64(i) * 1 << 28, Size: 65536, Done: func(_ *Request, at float64) {
				done = append(done, at)
			}})
		}
		e.RunAll()
		return done[len(done)-1]
	}
	slow, fast := run(0), run(4)
	if slow <= fast*1.5 {
		t.Errorf("10 requests at 3k RPM took %v, at 15k %v; want a clear slowdown", slow, fast)
	}
}

func TestEnergyAccountingIdleVsStandby(t *testing.T) {
	// One disk stays idle for 1000s; another spins down immediately.
	run := func(spinDown bool) float64 {
		e := simevent.New()
		spec := MultiSpeedUltrastar(1, 0)
		d := New(e, &spec, Config{Seed: 1})
		if spinDown {
			d.Standby()
		}
		e.Run(1000)
		d.CloseAccounting()
		return d.Energy()
	}
	idle, standby := run(false), run(true)
	spec := MultiSpeedUltrastar(1, 0)
	wantIdle := 1000 * spec.IdlePower[0]
	if math.Abs(idle-wantIdle) > 1e-6 {
		t.Errorf("idle energy %v, want %v", idle, wantIdle)
	}
	wantStandby := spec.SpinDownEnergy + (1000-spec.SpinDownTime)*spec.StandbyPower
	if math.Abs(standby-wantStandby) > 1e-6 {
		t.Errorf("standby energy %v, want %v", standby, wantStandby)
	}
	if standby >= idle {
		t.Errorf("standby %v should save vs idle %v over a long window", standby, idle)
	}
}

func TestEnergyLowerAtLowSpeedIdle(t *testing.T) {
	run := func(level int) float64 {
		e := simevent.New()
		spec := MultiSpeedUltrastar(5, 3000)
		d := New(e, &spec, Config{Seed: 1, InitialLevel: level})
		e.Run(1000)
		d.CloseAccounting()
		return d.Energy()
	}
	if low, high := run(0), run(4); low >= high {
		t.Errorf("idling at 3k (%v J) should beat 15k (%v J)", low, high)
	}
}

func TestEnergyBreakdownSumsToTotal(t *testing.T) {
	e, d, _ := testDisk(t, 5)
	var done []float64
	for i := 0; i < 20; i++ {
		submit(d, int64(i)*1<<25, 8192, i%2 == 0, &done)
	}
	e.Schedule(50, func() { d.SetTargetLevel(1) })
	e.Schedule(300, func() { d.Standby() })
	e.Run(1000)
	d.CloseAccounting()
	sum := 0.0
	for _, v := range d.Account().EnergyByState() {
		sum += v
	}
	if math.Abs(sum-d.Energy()) > 1e-9*(1+sum) {
		t.Errorf("state energies sum to %v, total %v", sum, d.Energy())
	}
	if len(done) != 20 {
		t.Errorf("completed %d, want 20", len(done))
	}
}

func TestIdleForTracksIdlePeriods(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	e.Run(5)
	if got := d.IdleFor(); math.Abs(got-5) > 1e-12 {
		t.Errorf("IdleFor = %v, want 5", got)
	}
	var done []float64
	submit(d, 0, 4096, false, &done)
	if d.IdleFor() != 0 {
		t.Error("busy disk must report IdleFor 0")
	}
	e.RunAll()
	idleStart := done[0]
	e2 := e.Now()
	_ = e2
	e.At(idleStart+7, func() {})
	e.RunAll()
	if got := d.IdleFor(); math.Abs(got-7) > 1e-9 {
		t.Errorf("IdleFor after completion = %v, want 7", got)
	}
}

func TestRequestValidation(t *testing.T) {
	_, d, spec := testDisk(t, 1)
	cases := []Request{
		{LBA: -1, Size: 4096, Done: func(*Request, float64) {}},
		{LBA: 0, Size: 0, Done: func(*Request, float64) {}},
		{LBA: spec.CapacityBytes, Size: 4096, Done: func(*Request, float64) {}},
		{LBA: 0, Size: 4096}, // nil Done
	}
	for i := range cases {
		r := cases[i]
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			d.Submit(&r)
		}()
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() (float64, float64) {
		e := simevent.New()
		spec := MultiSpeedUltrastar(5, 3000)
		d := New(e, &spec, Config{Seed: 42})
		var last float64
		for i := 0; i < 100; i++ {
			d.Submit(&Request{LBA: int64(i%7) * 1 << 27, Size: 8192, Done: func(_ *Request, at float64) { last = at }})
		}
		e.RunAll()
		d.CloseAccounting()
		return last, d.Energy()
	}
	l1, e1 := run()
	l2, e2 := run()
	if l1 != l2 || e1 != e2 {
		t.Errorf("replay diverged: (%v,%v) vs (%v,%v)", l1, e1, l2, e2)
	}
}

func TestUtilizationCounters(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	var done []float64
	submit(d, 0, 1<<20, true, &done)
	submit(d, 1<<20, 1<<20, false, &done)
	e.RunAll()
	r, w := d.BytesMoved()
	if r != 1<<20 || w != 1<<20 {
		t.Errorf("bytes moved r=%d w=%d, want 1MiB each", r, w)
	}
	if d.BusyTime() <= 0 {
		t.Error("BusyTime should be positive")
	}
	if d.ServiceMoments().Count() != 2 || d.SizeMoments().Mean() != 1<<20 {
		t.Error("service/size moments not recorded")
	}
	if d.MaxQueueDepth() < 1 {
		t.Errorf("MaxQueueDepth = %d", d.MaxQueueDepth())
	}
}
