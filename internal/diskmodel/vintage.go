package diskmodel

import (
	"fmt"
	"math"
)

// AFRCurve models a disk family's annualized failure rate over its
// deployed life as the classic bathtub: an infant-mortality component
// decaying geometrically over the first months, a flat useful-life floor,
// and a linear wear-out ramp past an onset age. Fleet-scale simulation
// (internal/fleet) uses it to stagger fault pressure across deployment
// vintages — a five-year-old SFF array sees materially more ambient
// trouble than a six-month-old enterprise one.
//
// At returns a rate per drive-year: 0.02 means a drive has a 2% chance of
// fail-stop death in one year of service.
type AFRCurve struct {
	// Infant is the extra AFR at age zero, on top of Useful.
	Infant float64
	// InfantDecayYears is the age at which the infant component has
	// decayed to 1/e of Infant.
	InfantDecayYears float64
	// Useful is the flat useful-life AFR floor.
	Useful float64
	// WearoutOnsetYears is the age past which wear-out sets in.
	WearoutOnsetYears float64
	// WearoutSlope is the extra AFR accrued per year past the onset.
	WearoutSlope float64
}

// At evaluates the curve at an age in years (clamped below at 0).
func (c AFRCurve) At(ageYears float64) float64 {
	if ageYears < 0 {
		ageYears = 0
	}
	afr := c.Useful
	if c.InfantDecayYears > 0 {
		afr += c.Infant * math.Exp(-ageYears/c.InfantDecayYears)
	}
	if ageYears > c.WearoutOnsetYears {
		afr += (ageYears - c.WearoutOnsetYears) * c.WearoutSlope
	}
	return afr
}

// FamilyAFR returns the failure curve for a named disk family. The two
// families mirror the Spec constructors: "enterprise" is the
// Ultrastar-class 3.5" drive (low useful-life AFR, late wear-out),
// "sff" the 2.5" nearline drive (higher floor, earlier wear-out). The
// boolean is false for unknown families.
func FamilyAFR(family string) (AFRCurve, bool) {
	switch family {
	case "enterprise":
		return AFRCurve{
			Infant: 0.020, InfantDecayYears: 0.5,
			Useful:            0.008,
			WearoutOnsetYears: 4, WearoutSlope: 0.020,
		}, true
	case "sff":
		return AFRCurve{
			Infant: 0.040, InfantDecayYears: 0.4,
			Useful:            0.015,
			WearoutOnsetYears: 3, WearoutSlope: 0.040,
		}, true
	}
	return AFRCurve{}, false
}

// Truncate returns a copy of the spec keeping only the lowest n RPM
// levels — the mechanism behind fleet power capping: a capped array's
// disks physically cannot run above the retained tiers, whatever the
// policy asks for. n is clamped to [1, Levels()]. The returned spec is
// self-contained (slices copied) and always passes Validate; capacity and
// transition parameters are unchanged, so a truncated array serves the
// same logical volume at lower speed.
func (s *Spec) Truncate(n int) Spec {
	if n < 1 {
		n = 1
	}
	if n > s.Levels() {
		n = s.Levels()
	}
	out := *s
	out.Name = fmt.Sprintf("%s-cap%d", s.Name, n)
	out.RPM = append([]int(nil), s.RPM[:n]...)
	out.IdlePower = append([]float64(nil), s.IdlePower[:n]...)
	out.ActivePower = append([]float64(nil), s.ActivePower[:n]...)
	out.TransferRate = append([]float64(nil), s.TransferRate[:n]...)
	return out
}
