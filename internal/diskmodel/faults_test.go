package diskmodel

import (
	"math"
	"testing"

	"hibernator/internal/simevent"
)

func faultDisk(t *testing.T) (*simevent.Engine, *Disk) {
	t.Helper()
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d := New(e, &spec, Config{ID: 0, Seed: 42, ExpectedRotLatency: true})
	return e, d
}

func TestTransientErrorsAreMarkedAndCounted(t *testing.T) {
	e, d := faultDisk(t)
	d.SetTransientErrorProb(1)
	var errored, done int
	for i := 0; i < 10; i++ {
		d.Submit(&Request{LBA: int64(i) * 4096, Size: 4096, Done: func(r *Request, _ float64) {
			done++
			if r.Errored {
				errored++
			}
		}})
	}
	e.RunAll()
	if done != 10 || errored != 10 {
		t.Fatalf("done=%d errored=%d, want 10/10 with prob 1", done, errored)
	}
	if d.TransientErrors() != 10 {
		t.Fatalf("TransientErrors=%d, want 10", d.TransientErrors())
	}
	// Probability 0 must never error (and must stay a no-op draw-wise).
	d.SetTransientErrorProb(0)
	ok := 0
	for i := 0; i < 10; i++ {
		d.Submit(&Request{LBA: int64(i) * 4096, Size: 4096, Done: func(r *Request, _ float64) {
			if !r.Errored {
				ok++
			}
		}})
	}
	e.RunAll()
	if ok != 10 {
		t.Fatalf("errors with probability 0: ok=%d", ok)
	}
}

func TestNoFaultConfigConsumesNoRandomness(t *testing.T) {
	// Two disks with identical seeds, one with a zero-probability "armed"
	// path never created: service draws must match exactly even with
	// random rotational latency enabled.
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d1 := New(e, &spec, Config{ID: 0, Seed: 7})
	d2 := New(e, &spec, Config{ID: 1, Seed: 7})
	d2.SetTransientErrorProb(0) // no-op: must not even allocate
	var t1, t2 []float64
	for i := 0; i < 20; i++ {
		lba := int64(i*37%11) * 1 << 20
		d1.Submit(&Request{LBA: lba, Size: 8192, Done: func(_ *Request, at float64) { t1 = append(t1, at) }})
		d2.Submit(&Request{LBA: lba, Size: 8192, Done: func(_ *Request, at float64) { t2 = append(t2, at) }})
	}
	e.RunAll()
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("completion %d diverged: %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestLatentRangeFailsReadsUntilRewritten(t *testing.T) {
	e, d := faultDisk(t)
	d.AddLatentRange(1<<20, 2<<20)
	results := map[string]bool{}
	read := func(key string, lba, size int64) {
		d.Submit(&Request{LBA: lba, Size: size, Done: func(r *Request, _ float64) {
			results[key] = r.Errored
		}})
		e.RunAll()
	}
	read("inside", 1<<20, 4096)
	read("overlap", 1<<20-2048, 4096)
	read("outside", 4<<20, 4096)
	if !results["inside"] || !results["overlap"] || results["outside"] {
		t.Fatalf("latent read outcomes wrong: %v", results)
	}
	if d.LatentErrors() != 2 {
		t.Fatalf("LatentErrors=%d, want 2", d.LatentErrors())
	}
	// A write overlapping the range repairs it (sector remap).
	d.Submit(&Request{LBA: 1 << 20, Size: 4096, Write: true, Done: func(r *Request, _ float64) {
		if r.Errored {
			t.Error("repair write must not error")
		}
	}})
	e.RunAll()
	if n := len(d.LatentRanges()); n != 0 {
		t.Fatalf("latent range not cleared by write: %d left", n)
	}
	read("after-repair", 1<<20, 4096)
	if results["after-repair"] {
		t.Fatal("read after repair write still errors")
	}
}

func TestFailSlowRampStretchesService(t *testing.T) {
	e, d := faultDisk(t)
	// Healthy baseline: sequential read from LBA 0 (no seek, no rotation).
	var base float64
	d.Submit(&Request{LBA: 0, Size: 1 << 20, Done: func(r *Request, at float64) { base = at - r.Start }})
	e.RunAll()

	d.SetFailSlow(e.Now(), 100, 3)
	if f := d.SlowFactor(); f != 1 {
		t.Fatalf("factor %v at ramp start, want 1", f)
	}
	// Jump past the ramp and measure the same sequential read again.
	e.Schedule(200, func() {
		if f := d.SlowFactor(); f != 3 {
			t.Errorf("factor %v after ramp, want 3", f)
		}
		d.Submit(&Request{LBA: d.headLBA, Size: 1 << 20, Done: func(r *Request, at float64) {
			got := at - r.Start
			if math.Abs(got-3*base) > 1e-9 {
				t.Errorf("slow service %v, want 3x healthy %v", got, base)
			}
		}})
	})
	e.RunAll()

	// Mid-ramp factor is linear.
	d2engine := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d2 := New(d2engine, &spec, Config{ID: 0, Seed: 1, ExpectedRotLatency: true})
	d2.SetFailSlow(10, 100, 5)
	d2engine.Schedule(60, func() {
		if f := d2.SlowFactor(); math.Abs(f-3) > 1e-9 { // halfway: 1 + 4*0.5
			t.Errorf("mid-ramp factor %v, want 3", f)
		}
	})
	d2engine.RunAll()
}

func TestSpinUpFailureExhaustsRetriesThenFails(t *testing.T) {
	e, d := faultDisk(t)
	d.SetSpinUpFailure(1, 2) // every attempt fails; 2 retries allowed
	if !d.Standby() {
		t.Fatal("standby refused on idle disk")
	}
	completions := 0
	failed := 0
	e.Schedule(60, func() {
		d.Submit(&Request{LBA: 0, Size: 4096, Done: func(r *Request, _ float64) {
			completions++
			if r.Failed {
				failed++
			}
		}})
	})
	e.RunAll()
	if d.State() != Failed {
		t.Fatalf("disk state %v after exhausted spin-up retries, want Failed", d.State())
	}
	if d.SpinUpFailures() != 3 { // initial attempt + 2 retries
		t.Fatalf("SpinUpFailures=%d, want 3", d.SpinUpFailures())
	}
	if completions != 1 || failed != 1 {
		t.Fatalf("queued request must complete as Failed: completions=%d failed=%d", completions, failed)
	}
}

func TestSpinUpRetrySucceedsEventually(t *testing.T) {
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	// Seed chosen arbitrarily; with p=0.5 and 8 retries the chance of the
	// fault path killing the disk is 1/512 for any seed — but the draw
	// sequence is deterministic, so the test outcome is fixed.
	d := New(e, &spec, Config{ID: 0, Seed: 3, ExpectedRotLatency: true})
	d.SetSpinUpFailure(0.5, 8)
	if !d.Standby() {
		t.Fatal("standby refused")
	}
	served := false
	e.Schedule(60, func() {
		d.Submit(&Request{LBA: 0, Size: 4096, Done: func(r *Request, _ float64) {
			served = !r.Failed
		}})
	})
	e.RunAll()
	if d.State() == Failed {
		t.Fatal("disk died despite retry budget")
	}
	if !served {
		t.Fatal("request not served after spin-up retries")
	}
}
