package diskmodel

import (
	"testing"

	"hibernator/internal/simevent"
)

func TestFailCompletesInFlightAndQueued(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	var ok, failed int
	for i := 0; i < 5; i++ {
		d.Submit(&Request{LBA: int64(i) << 20, Size: 1 << 20, Done: func(r *Request, _ float64) {
			if r.Failed {
				failed++
			} else {
				ok++
			}
		}})
	}
	// Let the first request complete, then kill the disk mid-second.
	e.Run(0.05)
	d.Fail()
	e.RunAll()
	if d.State() != Failed {
		t.Fatalf("state = %v, want Failed", d.State())
	}
	if ok+failed != 5 {
		t.Fatalf("completions %d+%d, want all 5 requests resolved", ok, failed)
	}
	if failed == 0 {
		t.Fatal("no request observed the failure")
	}
	if ok == 0 {
		t.Fatal("expected at least the first request to succeed")
	}
}

func TestSubmitToFailedDiskFailsFast(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	d.Fail()
	var gotFail bool
	d.Submit(&Request{LBA: 0, Size: 4096, Done: func(r *Request, _ float64) {
		gotFail = r.Failed
	}})
	e.RunAll()
	if !gotFail {
		t.Fatal("submission to failed disk must complete with Failed set")
	}
}

func TestFailedDiskDrawsNoPower(t *testing.T) {
	e, d, _ := testDisk(t, 1)
	e.Run(10)
	d.Fail()
	before := func() float64 { d.CloseAccounting(); return d.Energy() }()
	e.At(1000, func() {})
	e.RunAll()
	d.CloseAccounting()
	if d.Energy() != before {
		t.Errorf("failed disk accrued energy: %v -> %v", before, d.Energy())
	}
}

func TestFailIgnoresSubsequentCommands(t *testing.T) {
	e, d, _ := testDisk(t, 5)
	d.Fail()
	d.SetTargetLevel(0)
	d.SpinUp()
	if d.Standby() {
		t.Error("failed disk accepted Standby")
	}
	e.RunAll()
	if d.State() != Failed {
		t.Fatalf("state = %v after commands, want Failed", d.State())
	}
	if d.LevelShifts() != 0 {
		t.Error("failed disk shifted speed")
	}
}

func TestFailDuringSpinUpStaysFailed(t *testing.T) {
	e, d, spec := testDisk(t, 1)
	d.Standby()
	e.Run(spec.SpinDownTime + 0.1)
	var failedReqs int
	d.Submit(&Request{LBA: 0, Size: 4096, Done: func(r *Request, _ float64) {
		if r.Failed {
			failedReqs++
		}
	}})
	// Mid-spin-up, the motor dies.
	e.Run(spec.SpinDownTime + 0.1 + spec.SpinUpTime/2)
	d.Fail()
	e.RunAll()
	if d.State() != Failed {
		t.Fatalf("state = %v, want Failed", d.State())
	}
	if failedReqs != 1 {
		t.Fatalf("queued request not failed: %d", failedReqs)
	}
}

func TestFailIsIdempotent(t *testing.T) {
	e := simevent.New()
	spec := MultiSpeedUltrastar(1, 0)
	d := New(e, &spec, Config{Seed: 1})
	d.Fail()
	d.Fail()
	e.RunAll()
	if d.State() != Failed {
		t.Fatal("double Fail broke the state machine")
	}
}
