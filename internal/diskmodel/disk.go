package diskmodel

import (
	"fmt"
	"math/rand"

	"hibernator/internal/simevent"
	"hibernator/internal/stats"
)

// State enumerates the disk's operating modes.
type State int

// Disk states. Transitions: Standby <-> (SpinningUp/SpinningDown) <-> Idle
// <-> Busy, with ShiftingSpeed reachable from Idle.
const (
	Standby State = iota
	SpinningUp
	SpinningDown
	Idle
	Busy
	ShiftingSpeed
	// Failed disks reject all work and draw no power; they never recover
	// (recovery is a rebuild onto another drive at the array layer).
	Failed
)

// String returns the accounting name of the state.
func (s State) String() string {
	switch s {
	case Standby:
		return "standby"
	case SpinningUp:
		return "spinup"
	case SpinningDown:
		return "spindown"
	case Idle:
		return "idle"
	case Busy:
		return "active"
	case ShiftingSpeed:
		return "shift"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Request is one physical disk I/O. The array layer builds these from
// logical volume requests.
type Request struct {
	LBA   int64
	Size  int64
	Write bool

	// Background requests (migration, destage) are served only when no
	// foreground request is queued.
	Background bool

	// Done is invoked exactly once, at completion time. Disk sets Arrive
	// and Start, and sets Failed when the disk died before the request
	// could be served.
	Done func(r *Request, completedAt float64)

	Arrive float64
	Start  float64
	Failed bool
	// Errored marks a transient I/O error: the operation consumed its
	// full service time but did not succeed. Unlike Failed the disk is
	// still alive, so the caller may retry (see the fault models in
	// faults.go and the array layer's retry policy).
	Errored bool
}

// Scheduler selects how the disk orders queued foreground requests.
type Scheduler int

// Queue disciplines.
const (
	// FCFS serves requests in arrival order.
	FCFS Scheduler = iota
	// SPTF (shortest positioning time first) serves the queued request
	// closest to the head next. It improves throughput under load at the
	// cost of potential starvation of far-away requests.
	SPTF
)

// Config controls per-disk instantiation.
type Config struct {
	ID   int
	Seed int64
	// InitialLevel indexes Spec.RPM; disks start spinning and idle.
	InitialLevel int
	// ExpectedRotLatency replaces the random rotational delay with its
	// mean, for deterministic tests and analytic cross-checks.
	ExpectedRotLatency bool
	// Scheduler is the queue discipline (default FCFS). Background
	// requests always yield to foreground ones regardless.
	Scheduler Scheduler
}

// Observer receives every disk state transition as it happens. It exists
// for verification layers (internal/invariant) that shadow the disk's own
// accounting; a nil observer costs one pointer compare per transition and
// nothing else.
type Observer interface {
	// DiskTransition fires from inside the state change, after the disk's
	// fields (state, level, targetLevel) reflect the new state. power is the
	// draw the disk charged for the interval it is entering.
	DiskTransition(d *Disk, t float64, from, to State, power float64)
}

// Disk simulates one multi-speed drive: FCFS service with a foreground and
// a background queue, explicit spin and speed transitions, and full energy
// accounting.
type Disk struct {
	spec   *Spec
	engine *simevent.Engine
	// states is the engine spin/shift transition events fire on. It is
	// the same engine as `engine` in a sequential run; the partitioned
	// runner points it at the disk group's partition engine, whose clock
	// may run ahead of the global engine between barriers (see
	// internal/sim/parallel.go). I/O completions always stay on `engine`.
	states *simevent.Engine
	cfg    Config
	rng    *rand.Rand

	state       State
	level       int // current RPM level (meaningful unless Standby)
	targetLevel int // pending speed-change destination
	wantWake    bool

	fg, bg   queue
	current  *Request
	inflight simevent.Event
	headLBA  int64

	idleSince float64
	account   *stats.StateAccount
	observer  Observer

	// faults is nil until a fault model is armed (see faults.go); the
	// healthy fast path never touches it beyond a nil check.
	faults *faultState

	completed     uint64
	bytesRead     uint64
	bytesWritten  uint64
	busyTime      float64
	svcMoments    stats.Welford // observed service times
	sizeMoments   stats.Welford // observed request sizes
	respTimes     stats.Welford // disk-level response times (queue + service)
	posMoments    stats.Welford // observed positioning time (overhead + seek)
	seqForeground uint64        // foreground requests that were strictly sequential
	curPos        float64       // positioning time of the in-flight request
	curSeq        bool          // in-flight request was sequential
	spinUps       uint64
	spinDowns     uint64
	levelShifts   uint64
	bgCompleted   uint64
	maxQueueDepth int
	// rotDraws counts rotational-latency draws from the service-time RNG.
	// Snapshots record it as the stream position (see FaultRNGDraws).
	rotDraws uint64
}

// queue is a FIFO of requests with O(1) amortized push/pop.
type queue struct {
	items []*Request
	head  int
}

func (q *queue) push(r *Request) { q.items = append(q.items, r) }

func (q *queue) pop() *Request {
	if q.head >= len(q.items) {
		return nil
	}
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return r
}

func (q *queue) len() int { return len(q.items) - q.head }

// popNearest removes and returns the request whose LBA is closest to the
// head position (SPTF), or nil when empty.
func (q *queue) popNearest(head int64) *Request {
	if q.head >= len(q.items) {
		return nil
	}
	best := q.head
	bestDist := int64(-1)
	for i := q.head; i < len(q.items); i++ {
		d := q.items[i].LBA - head
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	r := q.items[best]
	// Preserve arrival order of the remainder by shifting.
	copy(q.items[best:], q.items[best+1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return r
}

// New creates a spinning, idle disk. The spec must validate.
func New(engine *simevent.Engine, spec *Spec, cfg Config) *Disk {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if cfg.InitialLevel < 0 || cfg.InitialLevel >= spec.Levels() {
		panic(fmt.Sprintf("diskmodel: initial level %d outside [0,%d)", cfg.InitialLevel, spec.Levels()))
	}
	d := &Disk{
		spec:        spec,
		engine:      engine,
		states:      engine,
		cfg:         cfg,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		state:       Idle,
		level:       cfg.InitialLevel,
		targetLevel: cfg.InitialLevel,
		idleSince:   engine.Now(),
	}
	d.account = stats.NewStateAccount(engine.Now(), Idle.String(), spec.IdlePower[d.level])
	return d
}

// SetStateEngine moves the disk's spin/shift transition events onto a
// dedicated engine (a partition of the global calendar). It must be called
// before any activity — the partitioned runner does so at construction
// time. Passing the disk's main engine restores sequential behavior.
func (d *Disk) SetStateEngine(e *simevent.Engine) { d.states = e }

// now returns the disk's notion of current time: the later of the global
// clock and the transition clock. Between barriers a partition's clock
// runs ahead of the global engine (and during merged stepping the global
// clock can lead the partition), so the disk always stamps accounting and
// schedules follow-ups off the frontmost of the two.
func (d *Disk) now() float64 {
	t := d.engine.Now()
	if d.states != d.engine {
		if st := d.states.Now(); st > t {
			t = st
		}
	}
	return t
}

// ID returns the configured disk identifier.
func (d *Disk) ID() int { return d.cfg.ID }

// Spec returns the disk's model parameters.
func (d *Disk) Spec() *Spec { return d.spec }

// State returns the current operating state.
func (d *Disk) State() State { return d.state }

// Level returns the current RPM level index. For a disk in Standby this is
// the level it will return to on spin-up.
func (d *Disk) Level() int { return d.level }

// TargetLevel returns the level the disk is heading to (equal to Level when
// no change is pending).
func (d *Disk) TargetLevel() int { return d.targetLevel }

// QueueLen returns the number of queued (not in-flight) requests.
func (d *Disk) QueueLen() int { return d.fg.len() + d.bg.len() }

// ForegroundQueueLen returns only the foreground backlog.
func (d *Disk) ForegroundQueueLen() int { return d.fg.len() }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.state == Busy }

// IdleFor returns how long the disk has been in Idle (0 if not idle).
func (d *Disk) IdleFor() float64 {
	if d.state != Idle {
		return 0
	}
	return d.now() - d.idleSince
}

// Account exposes the energy/state ledger.
func (d *Disk) Account() *stats.StateAccount { return d.account }

// SetObserver installs (or, with nil, removes) the transition observer.
func (d *Disk) SetObserver(o Observer) { d.observer = o }

// Completed returns the number of finished requests.
func (d *Disk) Completed() uint64 { return d.completed }

// BackgroundCompleted returns the number of finished background requests.
func (d *Disk) BackgroundCompleted() uint64 { return d.bgCompleted }

// SpinUps returns the number of standby->spinning transitions.
func (d *Disk) SpinUps() uint64 { return d.spinUps }

// SpinDowns returns the number of spinning->standby transitions.
func (d *Disk) SpinDowns() uint64 { return d.spinDowns }

// LevelShifts returns the number of speed changes performed.
func (d *Disk) LevelShifts() uint64 { return d.levelShifts }

// BusyTime returns cumulative seconds spent serving requests.
func (d *Disk) BusyTime() float64 { return d.busyTime }

// ServiceMoments returns the observed service-time accumulator.
func (d *Disk) ServiceMoments() *stats.Welford { return &d.svcMoments }

// SizeMoments returns the observed request-size accumulator.
func (d *Disk) SizeMoments() *stats.Welford { return &d.sizeMoments }

// ResponseMoments returns observed disk-level response times.
func (d *Disk) ResponseMoments() *stats.Welford { return &d.respTimes }

// PositionMoments returns the observed positioning time (controller
// overhead + seek) of foreground requests — the level-independent part of
// service time, which calibrates the CR optimizer's per-level predictions.
func (d *Disk) PositionMoments() *stats.Welford { return &d.posMoments }

// SequentialForeground returns how many foreground requests were strictly
// sequential (paying neither seek nor rotational latency).
func (d *Disk) SequentialForeground() uint64 { return d.seqForeground }

// MaxQueueDepth returns the high-water mark of the queue.
func (d *Disk) MaxQueueDepth() int { return d.maxQueueDepth }

// BytesMoved returns total bytes read and written.
func (d *Disk) BytesMoved() (read, written uint64) { return d.bytesRead, d.bytesWritten }

// RotLatencyDraws reports the service-time RNG's stream position: how
// many rotational-latency draws the disk has consumed (always 0 with
// ExpectedRotLatency). The stream is a pure function of (seed, draws),
// so snapshots record the count to pin the generator's future.
func (d *Disk) RotLatencyDraws() uint64 { return d.rotDraws }

// Submit enqueues a request. A standby (or spinning-down) disk wakes
// automatically, so callers never deadlock, but they pay the spin-up delay.
func (d *Disk) Submit(r *Request) {
	if r.LBA < 0 || r.Size <= 0 || r.LBA+r.Size > d.spec.CapacityBytes {
		panic(fmt.Sprintf("diskmodel: request [%d,+%d) outside capacity %d", r.LBA, r.Size, d.spec.CapacityBytes))
	}
	if r.Done == nil {
		panic("diskmodel: request without completion callback")
	}
	if d.state == Failed {
		r.Arrive = d.now()
		r.Failed = true
		d.engine.At(r.Arrive, func() { r.Done(r, d.engine.Now()) })
		return
	}
	r.Arrive = d.now()
	if r.Background {
		d.bg.push(r)
	} else {
		d.fg.push(r)
	}
	if q := d.QueueLen(); q > d.maxQueueDepth {
		d.maxQueueDepth = q
	}
	switch d.state {
	case Idle:
		d.startNext()
	case Standby:
		d.beginSpinUp()
	case SpinningDown:
		d.wantWake = true
	case SpinningUp, Busy, ShiftingSpeed:
		// Served when the transition or current request finishes.
	}
}

// SetTargetLevel requests a speed change. It takes effect immediately when
// the disk is idle; a busy disk finishes its in-flight request first, then
// shifts (queued requests wait out the shift — the cost Hibernator's
// coarse-grained epochs amortize). For a standby disk the new level applies
// at the next spin-up. Requests to the current level cancel any pending
// change.
func (d *Disk) SetTargetLevel(level int) {
	if level < 0 || level >= d.spec.Levels() {
		panic(fmt.Sprintf("diskmodel: level %d outside [0,%d)", level, d.spec.Levels()))
	}
	if d.state == Failed {
		return
	}
	d.targetLevel = level
	switch d.state {
	case Idle:
		if level != d.level {
			d.beginShift()
		}
	case Standby, SpinningDown:
		// Applied on wake.
		d.level = level
	case Busy, SpinningUp, ShiftingSpeed:
		// Applied when the current activity completes.
	}
}

// Standby spins the disk down. It succeeds only from Idle with an empty
// queue and reports whether the spin-down started.
func (d *Disk) Standby() bool {
	if d.state != Idle || d.QueueLen() > 0 {
		return false
	}
	d.spinDowns++
	d.setState(SpinningDown, d.spec.SpinDownEnergy/d.spec.SpinDownTime)
	d.states.At(d.now()+d.spec.SpinDownTime, func() {
		if d.state == Failed {
			return
		}
		d.setState(Standby, d.spec.StandbyPower)
		if d.wantWake || d.QueueLen() > 0 {
			d.wantWake = false
			d.beginSpinUp()
		}
	})
	return true
}

// SpinUp wakes a standby disk proactively. No-op in any other state.
func (d *Disk) SpinUp() {
	if d.state == Standby {
		d.beginSpinUp()
	}
	if d.state == SpinningDown {
		d.wantWake = true
	}
}

func (d *Disk) beginSpinUp() { d.spinUpAttempt(0) }

// spinUpAttempt runs one spin-up try. With the spin-up fault armed each
// attempt pays the full spin-up time and energy and may fail; after the
// bounded retries are exhausted the disk is declared dead.
func (d *Disk) spinUpAttempt(attempt int) {
	d.spinUps++
	d.level = d.targetLevel
	d.setState(SpinningUp, d.spec.SpinUpEnergy/d.spec.SpinUpTime)
	d.states.At(d.now()+d.spec.SpinUpTime, func() {
		if d.state == Failed {
			return
		}
		if d.spinUpFails() {
			if attempt >= d.faults.spinRetries {
				d.Fail()
				return
			}
			d.spinUpAttempt(attempt + 1)
			return
		}
		d.becomeIdleThenWork()
	})
}

func (d *Disk) beginShift() {
	// Capture the destination: if the target changes mid-shift the disk
	// still lands here first, then becomeIdleThenWork starts a new shift.
	dest := d.targetLevel
	dur, joules := d.spec.LevelShift(d.level, dest)
	hi := d.level
	if dest > hi {
		hi = dest
	}
	d.levelShifts++
	d.setState(ShiftingSpeed, d.spec.IdlePower[hi])
	d.account.AddEnergy(ShiftingSpeed.String(), joules)
	d.states.At(d.now()+dur, func() {
		if d.state == Failed {
			return
		}
		d.level = dest
		d.becomeIdleThenWork()
	})
}

// becomeIdleThenWork lands the disk in Idle and immediately dispatches any
// pending work or follow-up transition.
func (d *Disk) becomeIdleThenWork() {
	d.setState(Idle, d.spec.IdlePower[d.level])
	d.idleSince = d.now()
	if d.targetLevel != d.level {
		d.beginShift()
		return
	}
	if d.QueueLen() > 0 {
		d.startNext()
	}
}

func (d *Disk) startNext() {
	var r *Request
	if d.cfg.Scheduler == SPTF {
		r = d.fg.popNearest(d.headLBA)
		if r == nil {
			r = d.bg.popNearest(d.headLBA)
		}
	} else {
		r = d.fg.pop()
		if r == nil {
			r = d.bg.pop()
		}
	}
	if r == nil {
		return
	}
	now := d.now()
	r.Start = now
	d.current = r
	svc, pos, seq := d.serviceTime(r)
	d.curPos, d.curSeq = pos, seq
	d.setState(Busy, d.spec.ActivePower[d.level])
	d.inflight = d.engine.At(now+svc, func() { d.complete(r, svc) })
}

func (d *Disk) complete(r *Request, svc float64) {
	now := d.now()
	d.current = nil
	d.inflight = simevent.Event{}
	d.completed++
	if r.Background {
		d.bgCompleted++
	}
	d.busyTime += svc
	if !r.Background {
		// Moment accumulators describe foreground traffic only: policies
		// feed them into queueing models of the workload, and migration
		// chunks would distort both size and service distributions.
		d.svcMoments.Add(svc)
		d.sizeMoments.Add(float64(r.Size))
		d.respTimes.Add(now - r.Arrive)
		d.posMoments.Add(d.curPos)
		if d.curSeq {
			d.seqForeground++
		}
	}
	if r.Write {
		d.bytesWritten += uint64(r.Size)
	} else {
		d.bytesRead += uint64(r.Size)
	}
	d.headLBA = r.LBA + r.Size
	r.Errored = d.faultOutcome(r)
	done := r.Done
	// Advance disk state before the callback so callbacks observe a
	// consistent disk and may immediately Submit or change speeds.
	if d.targetLevel != d.level {
		d.setState(Idle, d.spec.IdlePower[d.level])
		d.idleSince = now
		d.beginShift()
	} else if d.QueueLen() > 0 {
		d.startNext()
	} else {
		d.setState(Idle, d.spec.IdlePower[d.level])
		d.idleSince = now
	}
	done(r, now)
}

// serviceTime computes seek + rotation + transfer + overhead for the
// request at the current level. A strictly sequential access (starting
// exactly where the head stopped) pays neither seek nor rotational
// latency — the head is already positioned, which is what lets streaming
// transfers (and migrations) run at the media rate.
func (d *Disk) serviceTime(r *Request) (svc, pos float64, sequential bool) {
	distance := r.LBA - d.headLBA
	if distance < 0 {
		distance = -distance
	}
	var seek, latency float64
	if distance > 0 {
		frac := float64(distance) / float64(d.spec.CapacityBytes)
		seek = d.spec.SeekTime(frac)
		rot := d.spec.RotationPeriod(d.level)
		if d.cfg.ExpectedRotLatency {
			latency = rot / 2
		} else {
			d.rotDraws++
			latency = d.rng.Float64() * rot
		}
	}
	pos = d.spec.ControllerOverhead + seek
	xfer := d.spec.TransferTime(d.level, r.Size)
	// Fail-slow degradation stretches the mechanical parts of the service
	// (positioning and transfer); rotational latency is unaffected — the
	// spindle still turns at full rate, the heads and channel do not.
	if f := d.SlowFactor(); f > 1 {
		pos *= f
		xfer *= f
	}
	svc = pos + latency + xfer
	return svc, pos, distance == 0
}

func (d *Disk) setState(s State, power float64) {
	from := d.state
	d.state = s
	now := d.now()
	d.account.Transition(now, s.String(), power)
	if d.observer != nil {
		d.observer.DiskTransition(d, now, from, s, power)
	}
}

// Fail kills the disk: the in-flight request and everything queued
// complete immediately with Failed set, future submissions fail on
// arrival, and the drive draws no further power. Failure is permanent at
// this layer — recovery is a rebuild onto another drive.
func (d *Disk) Fail() {
	if d.state == Failed {
		return
	}
	var doomed []*Request
	if d.current != nil {
		d.engine.Cancel(d.inflight)
		doomed = append(doomed, d.current)
		d.current = nil
		d.inflight = simevent.Event{}
	}
	for r := d.fg.pop(); r != nil; r = d.fg.pop() {
		doomed = append(doomed, r)
	}
	for r := d.bg.pop(); r != nil; r = d.bg.pop() {
		doomed = append(doomed, r)
	}
	d.setState(Failed, 0)
	at := d.now()
	for _, r := range doomed {
		r := r
		r.Failed = true
		d.engine.At(at, func() { r.Done(r, d.engine.Now()) })
	}
}

// CloseAccounting finalizes the energy ledger at the current simulated
// time. Call once at the end of a run.
func (d *Disk) CloseAccounting() {
	d.account.Close(d.now())
}

// Energy returns total joules consumed up to the last accounting close or
// transition.
func (d *Disk) Energy() float64 { return d.account.TotalEnergy() }
