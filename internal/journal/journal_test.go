package journal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	j, err := Open(path, "meta-v1")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Run: "r1", Status: StatusRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Run: "r1", Status: StatusDone, Attempt: 1, SHA256: "ab12"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Run: "r2", Status: StatusRunning, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: r1 is done with its hash, r2 was mid-flight.
	j2, err := Open(path, "meta-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if e, ok := j2.Done("r1"); !ok || e.SHA256 != "ab12" {
		t.Fatalf("r1 done = %v %v", e, ok)
	}
	if _, ok := j2.Done("r2"); ok {
		t.Fatal("r2 must not be done")
	}
	if e, ok := j2.Latest("r2"); !ok || e.Status != StatusRunning {
		t.Fatalf("r2 latest = %v %v", e, ok)
	}
	if j2.Runs() != 2 {
		t.Fatalf("runs = %d", j2.Runs())
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	j, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Entry{Run: "r1", Status: StatusDone, SHA256: "ff"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Simulate a kill -9 mid-append: a partial JSON line with no newline.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"run":"r2","sta`)
	f.Close()

	j2, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := j2.Latest("r2"); ok {
		t.Fatal("torn entry must not surface")
	}
	if _, ok := j2.Done("r1"); !ok {
		t.Fatal("r1 lost")
	}
	// The torn bytes are gone: a fresh append then reopen parses cleanly.
	if err := j2.Append(Entry{Run: "r3", Status: StatusDone, SHA256: "aa"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, ok := j3.Done("r3"); !ok {
		t.Fatal("r3 lost after torn-tail truncation")
	}
}

func TestJournalMetaMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	j, err := Open(path, "seed=1 n=100")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, err = Open(path, "seed=2 n=100")
	if err == nil || !strings.Contains(err.Error(), "seed=1") {
		t.Fatalf("want meta mismatch naming the recorded config, got %v", err)
	}
}

func TestOpenReplayStreamsEntriesInOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	j, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Entry{
		{Run: "a", Status: StatusRunning, Attempt: 1},
		{Run: "b", Status: StatusRunning, Attempt: 1},
		{Run: "a", Status: StatusDone, SHA256: "aa"},
	} {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	var got []Entry
	var lines []int
	j2, err := OpenReplay(path, "m", func(line int, e Entry) error {
		got = append(got, e)
		lines = append(lines, line)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(got) != 3 || got[0].Run != "a" || got[1].Run != "b" || got[2].Status != StatusDone {
		t.Fatalf("replayed %+v", got)
	}
	// Line 1 is the meta entry, so the replayed entries sit on 2..4.
	if lines[0] != 2 || lines[1] != 3 || lines[2] != 4 {
		t.Fatalf("line numbers %v, want [2 3 4]", lines)
	}
}

func TestOpenReplayCallbackErrorAbortsWithLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "suite.jsonl")
	j, err := Open(path, "m")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Entry{Run: "a", Status: StatusRunning, Attempt: 1})
	j.Append(Entry{Run: "a", Status: "bogus"})
	j.Close()
	boom := errors.New("unknown status")
	_, err = OpenReplay(path, "m", func(line int, e Entry) error {
		if e.Status == "bogus" {
			return boom
		}
		return nil
	})
	if err == nil || !errors.Is(err, boom) || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want wrapped line-3 error, got %v", err)
	}
}
