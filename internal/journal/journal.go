// Package journal records a suite's run lifecycle in an append-only
// JSONL file so an interrupted suite can resume where it died. Each line
// is one Entry: a run moves pending → running → done (with the sha256 of
// its result artifact) or failed (with a structured reason). Appends are
// fsynced, so every entry that Open later returns was durable before the
// crash; a torn final line — the one write a kill -9 can interrupt — is
// detected and truncated away on Open.
//
// The journal is an operational artifact, not a deterministic one: it
// may carry wall-clock durations and attempt counts. Result artifacts
// themselves are written atomically elsewhere (internal/atomicio) and
// verified by hash on resume, so the journal never has to be trusted
// about content — only about which runs are worth re-checking.
package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Statuses a run moves through. "meta" is reserved for the journal's own
// header entry.
const (
	StatusPending = "pending"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed"
	statusMeta    = "meta"
)

// Entry is one journal line.
type Entry struct {
	// Run identifies the unit of work (experiment ID, scenario index).
	Run string `json:"run"`
	// Status is one of the Status constants.
	Status string `json:"status"`
	// Attempt counts executions of this run, 1-based (retries increment).
	Attempt int `json:"attempt,omitempty"`
	// SHA256 is the hex digest of the run's result artifact (done only).
	SHA256 string `json:"sha256,omitempty"`
	// Detail carries a failure reason or auxiliary payload.
	Detail string `json:"detail,omitempty"`
	// Wall is the run's wall-clock duration in seconds (operational;
	// never part of any deterministic output).
	Wall float64 `json:"wall_s,omitempty"`
}

// Journal is an open journal file. It is safe for concurrent use by the
// pool workers of one process.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	meta   string
	latest map[string]Entry
}

// Open opens (or creates) the journal at path. meta identifies the suite
// configuration (flags, seed, scale); a fresh journal records it, and
// reopening a journal written under a different meta is an error — a
// resume with changed flags would silently mix incompatible results.
// A torn final line from a crashed writer is truncated away.
func Open(path, meta string) (*Journal, error) {
	return OpenReplay(path, meta, nil)
}

// OpenReplay opens the journal like Open and additionally hands every
// durable entry — in file order, with its 1-based line number — to the
// replay callback before returning. Callers that need more than the
// per-run latest entry (the job server rebuilds a full lifecycle from
// the stream of edges) replay through this hook; a callback error
// aborts the open and is returned verbatim, wrapped with the line
// number, so a semantically corrupt journal fails loudly instead of
// being half-applied. Meta entries are not replayed.
func OpenReplay(path, meta string, replay func(line int, e Entry) error) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, latest: map[string]Entry{}}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	valid := 0 // bytes of fully-parsed lines
	line := 0
	for len(data[valid:]) > 0 {
		nl := bytes.IndexByte(data[valid:], '\n')
		if nl < 0 {
			break // torn tail: no newline made it to disk
		}
		var e Entry
		if err := json.Unmarshal(data[valid:valid+nl], &e); err != nil {
			break // torn tail: newline from a later write, partial JSON
		}
		valid += nl + 1
		line++
		if e.Status == statusMeta {
			if j.meta == "" {
				j.meta = e.Detail
			}
			continue
		}
		if replay != nil {
			if err := replay(line, e); err != nil {
				f.Close()
				return nil, fmt.Errorf("%s: line %d: %w", path, line, err)
			}
		}
		j.latest[e.Run] = e
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if j.meta == "" && valid == 0 {
		j.meta = meta
		if err := j.append(Entry{Run: "journal", Status: statusMeta, Detail: meta}); err != nil {
			f.Close()
			return nil, err
		}
	} else if j.meta != meta {
		f.Close()
		return nil, fmt.Errorf("journal %s: recorded config %q does not match current %q (use a fresh journal or the original flags)", path, j.meta, meta)
	}
	return j, nil
}

// Append records one entry durably: the line is written and fsynced
// before Append returns, so a later crash cannot lose it.
func (j *Journal) Append(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(e)
}

func (j *Journal) append(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if e.Status != statusMeta {
		j.latest[e.Run] = e
	}
	return nil
}

// Latest returns the most recent entry recorded for run.
func (j *Journal) Latest(run string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.latest[run]
	return e, ok
}

// Done returns the run's entry when its latest status is done.
func (j *Journal) Done(run string) (Entry, bool) {
	e, ok := j.Latest(run)
	if !ok || e.Status != StatusDone {
		return Entry{}, false
	}
	return e, true
}

// Runs returns the number of runs with at least one recorded entry.
func (j *Journal) Runs() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.latest)
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}
