// Package trace defines the logical request stream the simulator consumes
// and provides the synthetic workload generators that stand in for the
// paper's proprietary traces: an OLTP-like generator (for the TPC-C-style
// database workload) and a Cello-like generator (for the HP Cello99
// file-server workload). See DESIGN.md for the substitution rationale.
package trace

import (
	"fmt"
	"sort"
)

// Request is one logical array request.
type Request struct {
	Time  float64 // arrival time, seconds from run start
	Off   int64   // logical volume byte offset
	Size  int64   // bytes
	Write bool

	// Tenant is an opaque stream tag carried through the simulator
	// untouched: multi-tenant workloads (internal/fleet) label each
	// tenant's requests with it and read it back in sim.Config.OnResponse
	// to attribute response times. Single-stream workloads leave it 0.
	Tenant int
}

// Source yields requests in nondecreasing Time order. Next reports false
// when the stream ends.
type Source interface {
	Next() (Request, bool)
}

// SliceSource replays a fixed request list.
type SliceSource struct {
	reqs []Request
	pos  int
}

// NewSliceSource panics if the slice is not time-ordered.
func NewSliceSource(reqs []Request) *SliceSource {
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Time < reqs[i-1].Time {
			panic(fmt.Sprintf("trace: slice source out of order at %d", i))
		}
	}
	return &SliceSource{reqs: reqs}
}

// Next implements Source.
func (s *SliceSource) Next() (Request, bool) {
	if s.pos >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.pos]
	s.pos++
	return r, true
}

// Limit truncates a source at a maximum time and/or request count
// (zero means unlimited).
type Limit struct {
	src      Source
	maxTime  float64
	maxCount uint64
	count    uint64
}

// NewLimit wraps src.
func NewLimit(src Source, maxTime float64, maxCount uint64) *Limit {
	return &Limit{src: src, maxTime: maxTime, maxCount: maxCount}
}

// Next implements Source.
func (l *Limit) Next() (Request, bool) {
	if l.maxCount > 0 && l.count >= l.maxCount {
		return Request{}, false
	}
	r, ok := l.src.Next()
	if !ok {
		return Request{}, false
	}
	if l.maxTime > 0 && r.Time > l.maxTime {
		return Request{}, false
	}
	l.count++
	return r, true
}

// Merge interleaves multiple sources into one time-ordered stream.
type Merge struct {
	srcs    []Source
	heads   []Request
	present []bool
}

// NewMerge pulls the first request of each source eagerly.
func NewMerge(srcs ...Source) *Merge {
	m := &Merge{srcs: srcs, heads: make([]Request, len(srcs)), present: make([]bool, len(srcs))}
	for i, s := range srcs {
		m.heads[i], m.present[i] = s.Next()
	}
	return m
}

// Next implements Source.
func (m *Merge) Next() (Request, bool) {
	best := -1
	for i, ok := range m.present {
		if !ok {
			continue
		}
		if best < 0 || m.heads[i].Time < m.heads[best].Time {
			best = i
		}
	}
	if best < 0 {
		return Request{}, false
	}
	r := m.heads[best]
	m.heads[best], m.present[best] = m.srcs[best].Next()
	return r, true
}

// Drain collects up to max requests from a source (0 = all).
func Drain(src Source, max int) []Request {
	var out []Request
	for {
		if max > 0 && len(out) >= max {
			return out
		}
		r, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

// Characteristics summarizes a request list for the workload table (T2).
type Characteristics struct {
	Count            int
	ReadFraction     float64
	MeanSizeBytes    float64
	MeanInterarrival float64
	Duration         float64
	// Top10Coverage is the fraction of accesses landing in the hottest 10%
	// of 1 MiB regions — the spatial skew migration policies exploit.
	Top10Coverage float64
}

// Characterize computes summary statistics of a trace.
func Characterize(reqs []Request) Characteristics {
	var c Characteristics
	c.Count = len(reqs)
	if c.Count == 0 {
		return c
	}
	const region = 1 << 20
	regions := map[int64]int{}
	reads := 0
	var bytes int64
	for _, r := range reqs {
		if !r.Write {
			reads++
		}
		bytes += r.Size
		regions[r.Off/region]++
	}
	c.ReadFraction = float64(reads) / float64(c.Count)
	c.MeanSizeBytes = float64(bytes) / float64(c.Count)
	c.Duration = reqs[len(reqs)-1].Time - reqs[0].Time
	if c.Count > 1 {
		c.MeanInterarrival = c.Duration / float64(c.Count-1)
	}
	counts := make([]int, 0, len(regions))
	for _, n := range regions {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	top := (len(counts) + 9) / 10
	sum := 0
	for i := 0; i < top; i++ {
		sum += counts[i]
	}
	c.Top10Coverage = float64(sum) / float64(c.Count)
	return c
}

// Scale transforms a source: arrival times multiply by timeFactor (>1
// stretches the trace, <1 compresses and intensifies it) and offsets by
// addrFactor (folding into [0, volumeBytes) when provided). This is the
// standard trace-scaling tool for fitting a recorded workload onto a
// different array.
type Scale struct {
	src         Source
	timeFactor  float64
	addrFactor  float64
	volumeBytes int64
}

// NewScale wraps src. Factors must be positive; volumeBytes 0 disables
// address folding.
func NewScale(src Source, timeFactor, addrFactor float64, volumeBytes int64) *Scale {
	if timeFactor <= 0 || addrFactor <= 0 {
		panic(fmt.Sprintf("trace: scale factors must be positive, got %v/%v", timeFactor, addrFactor))
	}
	return &Scale{src: src, timeFactor: timeFactor, addrFactor: addrFactor, volumeBytes: volumeBytes}
}

// Next implements Source.
func (s *Scale) Next() (Request, bool) {
	r, ok := s.src.Next()
	if !ok {
		return Request{}, false
	}
	r.Time *= s.timeFactor
	r.Off = int64(float64(r.Off) * s.addrFactor)
	if s.volumeBytes > 0 {
		if r.Off+r.Size > s.volumeBytes {
			r.Off = r.Off % (s.volumeBytes - r.Size)
		}
		if r.Off < 0 {
			r.Off = 0
		}
	}
	return r, true
}
