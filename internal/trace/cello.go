package trace

import (
	"fmt"
	"math/rand"

	"hibernator/internal/dist"
)

// CelloConfig parameterizes the Cello-like file-server generator: bursts
// of mostly-sequential I/O arriving on a strong diurnal cycle, spread
// unevenly across logical volumes. The long quiet troughs are what
// spin-down policies exploit; the bursts are what breaks them.
type CelloConfig struct {
	Seed        int64
	VolumeBytes int64
	Duration    float64

	// Diurnal burst-arrival profile: bursts/second oscillating between
	// NightRate and DayRate with the given period (default 86400 s) and
	// day peak at phase 0.5.
	NightRate float64 // default 0.02 bursts/s
	DayRate   float64 // default 2.0 bursts/s
	DayPeriod float64 // default 86400

	// Bursts: Pareto-distributed request count (shape BurstAlpha, minimum
	// BurstMin, default 1.5/4) with exponential intra-burst gaps of mean
	// IntraGap seconds (default 0.01).
	BurstAlpha float64
	BurstMin   float64
	IntraGap   float64

	// Volumes partitions the address space; per-volume weights fall off as
	// 1/rank. SeqProb is the chance each subsequent request in a burst
	// continues sequentially (default 0.7).
	Volumes      int // default 8
	SeqProb      float64
	ReadFraction float64 // default 0.6

	// SizesBytes/SizeWeights: default 8/32/64 KiB at 0.5/0.3/0.2.
	SizesBytes  []int64
	SizeWeights []float64

	Align int64 // default 4096
}

func (c *CelloConfig) applyDefaults() error {
	if c.VolumeBytes <= 0 || c.Duration <= 0 {
		return fmt.Errorf("trace: cello needs positive volume and duration")
	}
	if c.NightRate == 0 {
		c.NightRate = 0.02
	}
	if c.DayRate == 0 {
		c.DayRate = 2.0
	}
	if c.NightRate < 0 || c.DayRate < c.NightRate {
		return fmt.Errorf("trace: cello rates invalid: night %v day %v", c.NightRate, c.DayRate)
	}
	if c.DayPeriod == 0 {
		c.DayPeriod = 86400
	}
	if c.BurstAlpha == 0 {
		c.BurstAlpha = 1.5
	}
	if c.BurstMin == 0 {
		c.BurstMin = 4
	}
	if c.IntraGap == 0 {
		c.IntraGap = 0.01
	}
	if c.Volumes == 0 {
		c.Volumes = 8
	}
	if c.Volumes < 1 {
		return fmt.Errorf("trace: cello needs at least one volume")
	}
	if c.SeqProb == 0 {
		c.SeqProb = 0.7
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.6
	}
	if len(c.SizesBytes) == 0 {
		c.SizesBytes = []int64{8192, 32768, 65536}
		c.SizeWeights = []float64{0.5, 0.3, 0.2}
	}
	if len(c.SizesBytes) != len(c.SizeWeights) {
		return fmt.Errorf("trace: %d sizes but %d weights", len(c.SizesBytes), len(c.SizeWeights))
	}
	if c.Align == 0 {
		c.Align = 4096
	}
	return nil
}

// Cello generates the file-server stream. Bursts are serialized: a burst's
// requests are emitted before the next burst begins (if the next burst
// start would precede the tail of the current one, it is pushed back),
// which keeps the stream time-ordered without modeling client concurrency.
type Cello struct {
	cfg     CelloConfig
	rng     *rand.Rand
	bursts  *dist.NonHomogeneousPoisson
	lenDist *dist.Pareto
	gap     *dist.Exponential
	volume  *dist.Choice
	sizes   *dist.Choice
	isRead  *dist.Bernoulli
	seq     *dist.Bernoulli

	volBytes  int64
	pending   []Request
	pendPos   int
	burstTime float64 // start time of the next burst
	lastEmit  float64
}

// NewCello validates the configuration and builds the generator.
func NewCello(cfg CelloConfig) (*Cello, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rng := dist.Source(cfg.Seed)
	weights := make([]float64, cfg.Volumes)
	for i := range weights {
		weights[i] = 1 / float64(i+1)
	}
	rate := dist.DiurnalRate(cfg.NightRate, cfg.DayRate, cfg.DayPeriod, 0.5)
	g := &Cello{
		cfg:      cfg,
		rng:      rng,
		bursts:   dist.NewNonHomogeneousPoisson(rng, rate, cfg.DayRate),
		lenDist:  dist.NewPareto(rng, cfg.BurstAlpha, cfg.BurstMin),
		gap:      dist.NewExponential(rng, 1/cfg.IntraGap),
		volume:   dist.NewChoice(rng, weights),
		sizes:    dist.NewChoice(rng, cfg.SizeWeights),
		isRead:   dist.NewBernoulli(rng, cfg.ReadFraction),
		seq:      dist.NewBernoulli(rng, cfg.SeqProb),
		volBytes: cfg.VolumeBytes / int64(cfg.Volumes),
	}
	if g.volBytes < 1<<20 {
		return nil, fmt.Errorf("trace: cello volume slice %d too small; need >= 1 MiB per volume", g.volBytes)
	}
	return g, nil
}

// Next implements Source.
func (g *Cello) Next() (Request, bool) {
	for g.pendPos >= len(g.pending) {
		if !g.generateBurst() {
			return Request{}, false
		}
	}
	r := g.pending[g.pendPos]
	g.pendPos++
	g.lastEmit = r.Time
	return r, true
}

func (g *Cello) generateBurst() bool {
	start := g.bursts.Next(g.burstTime)
	if start < g.lastEmit {
		start = g.lastEmit
	}
	g.burstTime = start
	if start > g.cfg.Duration {
		return false
	}
	n := int(g.lenDist.Sample())
	if n < 1 {
		n = 1
	}
	if n > 10000 {
		n = 10000 // clip the Pareto tail: one burst must not swallow the run
	}
	vol := int64(g.volume.Sample())
	base := vol * g.volBytes
	size := g.cfg.SizesBytes[g.sizes.Sample()]
	pos := base + g.rng.Int63n(g.volBytes-size)/g.cfg.Align*g.cfg.Align
	write := !g.isRead.Sample()

	g.pending = g.pending[:0]
	g.pendPos = 0
	t := start
	for i := 0; i < n; i++ {
		if t > g.cfg.Duration {
			break
		}
		if pos+size > base+g.volBytes {
			pos = base // wrap within the volume
		}
		g.pending = append(g.pending, Request{Time: t, Off: pos, Size: size, Write: write})
		if g.seq.Sample() {
			pos += size
		} else {
			pos = base + g.rng.Int63n(g.volBytes-size)/g.cfg.Align*g.cfg.Align
			write = !g.isRead.Sample()
		}
		t += g.gap.Sample()
	}
	return true
}
