package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits requests as "time,offset,size,rw" lines with a header.
func WriteCSV(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,offset,size,rw"); err != nil {
		return 0, err
	}
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		rw := "R"
		if r.Write {
			rw = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.6f,%d,%d,%s\n", r.Time, r.Off, r.Size, rw); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// maxCSVLine bounds one trace line; a longer line is a structured error,
// not a bufio.ErrTooLong panic-by-proxy somewhere downstream.
const maxCSVLine = 1 << 20

// CSVSource parses the WriteCSV format lazily.
type CSVSource struct {
	sc       *bufio.Scanner
	line     int
	err      error
	lastTime float64
}

// NewCSVSource wraps a reader; the header line is required.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), maxCSVLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, scanErr(1, err)
		}
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != "time,offset,size,rw" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	return &CSVSource{sc: sc, line: 1}, nil
}

// scanErr wraps a bufio.Scanner error with the line it happened on,
// translating ErrTooLong into something actionable.
func scanErr(line int, err error) error {
	if errors.Is(err, bufio.ErrTooLong) {
		return fmt.Errorf("trace: line %d: line exceeds %d bytes", line, maxCSVLine)
	}
	return fmt.Errorf("trace: line %d: %w", line, err)
}

// Next implements Source. Malformed lines terminate the stream; Err
// reports the cause. Every rejection carries the line number: NaN or
// infinite times (which would sail through plain range comparisons),
// negative times and offsets, non-positive sizes, and over-long lines
// are all structured errors, never panics downstream.
func (c *CSVSource) Next() (Request, bool) {
	if c.err != nil {
		return Request{}, false
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			c.err = scanErr(c.line+1, err)
		}
		return Request{}, false
	}
	c.line++
	fields := strings.Split(strings.TrimSpace(c.sc.Text()), ",")
	if len(fields) != 4 {
		c.err = fmt.Errorf("trace: line %d: want 4 fields, got %d", c.line, len(fields))
		return Request{}, false
	}
	t, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		c.err = fmt.Errorf("trace: line %d: bad time %q", c.line, fields[0])
		return Request{}, false
	}
	if math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		c.err = fmt.Errorf("trace: line %d: time must be finite and >= 0, got %q", c.line, fields[0])
		return Request{}, false
	}
	off, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		c.err = fmt.Errorf("trace: line %d: bad offset %q", c.line, fields[1])
		return Request{}, false
	}
	if off < 0 {
		c.err = fmt.Errorf("trace: line %d: offset must be >= 0, got %d", c.line, off)
		return Request{}, false
	}
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		c.err = fmt.Errorf("trace: line %d: bad size %q", c.line, fields[2])
		return Request{}, false
	}
	if size <= 0 {
		c.err = fmt.Errorf("trace: line %d: size must be positive, got %d", c.line, size)
		return Request{}, false
	}
	var write bool
	switch fields[3] {
	case "R":
	case "W":
		write = true
	default:
		c.err = fmt.Errorf("trace: line %d: rw field %q", c.line, fields[3])
		return Request{}, false
	}
	if t < c.lastTime {
		c.err = fmt.Errorf("trace: line %d: time went backwards (%v < %v)", c.line, t, c.lastTime)
		return Request{}, false
	}
	c.lastTime = t
	return Request{Time: t, Off: off, Size: size, Write: write}, true
}

// Err returns the first parse or I/O error encountered, if any.
func (c *CSVSource) Err() error { return c.err }
