package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteCSV emits requests as "time,offset,size,rw" lines with a header.
func WriteCSV(w io.Writer, src Source) (int, error) {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "time,offset,size,rw"); err != nil {
		return 0, err
	}
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		rw := "R"
		if r.Write {
			rw = "W"
		}
		if _, err := fmt.Fprintf(bw, "%.6f,%d,%d,%s\n", r.Time, r.Off, r.Size, rw); err != nil {
			return n, err
		}
		n++
	}
	return n, bw.Flush()
}

// CSVSource parses the WriteCSV format lazily.
type CSVSource struct {
	sc       *bufio.Scanner
	line     int
	err      error
	lastTime float64
}

// NewCSVSource wraps a reader; the header line is required.
func NewCSVSource(r io.Reader) (*CSVSource, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("trace: empty CSV")
	}
	if got := strings.TrimSpace(sc.Text()); got != "time,offset,size,rw" {
		return nil, fmt.Errorf("trace: unexpected CSV header %q", got)
	}
	return &CSVSource{sc: sc, line: 1}, nil
}

// Next implements Source. Malformed lines terminate the stream; Err
// reports the cause.
func (c *CSVSource) Next() (Request, bool) {
	if c.err != nil || !c.sc.Scan() {
		if c.err == nil {
			c.err = c.sc.Err()
		}
		return Request{}, false
	}
	c.line++
	fields := strings.Split(strings.TrimSpace(c.sc.Text()), ",")
	if len(fields) != 4 {
		c.err = fmt.Errorf("trace: line %d: want 4 fields, got %d", c.line, len(fields))
		return Request{}, false
	}
	t, err1 := strconv.ParseFloat(fields[0], 64)
	off, err2 := strconv.ParseInt(fields[1], 10, 64)
	size, err3 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil {
		c.err = fmt.Errorf("trace: line %d: bad numeric field", c.line)
		return Request{}, false
	}
	var write bool
	switch fields[3] {
	case "R":
	case "W":
		write = true
	default:
		c.err = fmt.Errorf("trace: line %d: rw field %q", c.line, fields[3])
		return Request{}, false
	}
	if t < c.lastTime {
		c.err = fmt.Errorf("trace: line %d: time went backwards (%v < %v)", c.line, t, c.lastTime)
		return Request{}, false
	}
	c.lastTime = t
	return Request{Time: t, Off: off, Size: size, Write: write}, true
}

// Err returns the first parse or I/O error encountered, if any.
func (c *CSVSource) Err() error { return c.err }
