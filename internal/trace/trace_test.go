package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"hibernator/internal/dist"
)

func TestSliceSourceAndDrain(t *testing.T) {
	reqs := []Request{{Time: 1}, {Time: 2}, {Time: 3}}
	got := Drain(NewSliceSource(reqs), 0)
	if len(got) != 3 {
		t.Fatalf("drained %d, want 3", len(got))
	}
	got = Drain(NewSliceSource(reqs), 2)
	if len(got) != 2 {
		t.Fatalf("limited drain = %d, want 2", len(got))
	}
}

func TestSliceSourceRejectsDisorder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order slice must panic")
		}
	}()
	NewSliceSource([]Request{{Time: 2}, {Time: 1}})
}

func TestLimit(t *testing.T) {
	reqs := []Request{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	got := Drain(NewLimit(NewSliceSource(reqs), 2.5, 0), 0)
	if len(got) != 2 {
		t.Fatalf("time-limited drain = %d, want 2", len(got))
	}
	got = Drain(NewLimit(NewSliceSource(reqs), 0, 3), 0)
	if len(got) != 3 {
		t.Fatalf("count-limited drain = %d, want 3", len(got))
	}
}

func TestMergePreservesOrder(t *testing.T) {
	a := NewSliceSource([]Request{{Time: 1}, {Time: 4}, {Time: 5}})
	b := NewSliceSource([]Request{{Time: 2}, {Time: 3}, {Time: 6}})
	got := Drain(NewMerge(a, b), 0)
	if len(got) != 6 {
		t.Fatalf("merged %d, want 6", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Time < got[i-1].Time {
			t.Fatalf("merge out of order at %d: %v", i, got)
		}
	}
}

func oltpFor(t *testing.T, cfg OLTPConfig) *OLTP {
	t.Helper()
	g, err := NewOLTP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestOLTPBasicProperties(t *testing.T) {
	vol := int64(1) << 32 // 4 GiB
	g := oltpFor(t, OLTPConfig{Seed: 1, VolumeBytes: vol, Duration: 600, MaxRate: 100})
	reqs := Drain(g, 0)
	if len(reqs) == 0 {
		t.Fatal("no requests generated")
	}
	// Rate check: ~100 req/s over 600 s.
	if got := float64(len(reqs)); math.Abs(got-60000) > 3000 {
		t.Errorf("generated %v requests, want ~60000", got)
	}
	for i, r := range reqs {
		if r.Off < 0 || r.Off+r.Size > vol {
			t.Fatalf("request %d outside volume: off=%d size=%d", i, r.Off, r.Size)
		}
		if r.Off%4096 != 0 {
			t.Fatalf("request %d not aligned: %d", i, r.Off)
		}
		if i > 0 && r.Time < reqs[i-1].Time {
			t.Fatalf("time disorder at %d", i)
		}
		if r.Time > 600 {
			t.Fatalf("request %d beyond duration: %v", i, r.Time)
		}
	}
	c := Characterize(reqs)
	if math.Abs(c.ReadFraction-0.66) > 0.02 {
		t.Errorf("read fraction %v, want ~0.66", c.ReadFraction)
	}
	if c.Top10Coverage < 0.5 {
		t.Errorf("top-10%% coverage %v; want skewed (>0.5)", c.Top10Coverage)
	}
}

func TestOLTPHotRegionsReceiveMostTraffic(t *testing.T) {
	vol := int64(1) << 30
	g := oltpFor(t, OLTPConfig{Seed: 2, VolumeBytes: vol, Duration: 300, MaxRate: 200, Regions: 256})
	hot := map[int64]bool{}
	for _, r := range g.HotRegions(26) { // top ~10%
		hot[r] = true
	}
	reqs := Drain(g, 0)
	inHot := 0
	for _, r := range reqs {
		if hot[r.Off/g.RegionBytes()] {
			inHot++
		}
	}
	frac := float64(inHot) / float64(len(reqs))
	if frac < 0.5 {
		t.Errorf("hot regions got %v of traffic, want > 0.5", frac)
	}
}

func TestOLTPDiurnalModulation(t *testing.T) {
	vol := int64(1) << 30
	day := 1000.0
	g := oltpFor(t, OLTPConfig{
		Seed: 3, VolumeBytes: vol, Duration: day,
		Rate:    dist.DiurnalRate(5, 100, day, 0.5),
		MaxRate: 100,
	})
	reqs := Drain(g, 0)
	var edge, mid int
	for _, r := range reqs {
		switch {
		case r.Time < day/8 || r.Time > day*7/8:
			edge++
		case r.Time > day*3/8 && r.Time < day*5/8:
			mid++
		}
	}
	if mid < 3*edge {
		t.Errorf("diurnal peak not visible: mid=%d edge=%d", mid, edge)
	}
}

func TestOLTPDeterministicBySeed(t *testing.T) {
	mk := func() []Request {
		g := oltpFor(t, OLTPConfig{Seed: 7, VolumeBytes: 1 << 30, Duration: 10, MaxRate: 50})
		return Drain(g, 0)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs", i)
		}
	}
}

func TestOLTPConfigValidation(t *testing.T) {
	bad := []OLTPConfig{
		{VolumeBytes: 0, Duration: 1, MaxRate: 1},
		{VolumeBytes: 1 << 30, Duration: 0, MaxRate: 1},
		{VolumeBytes: 1 << 30, Duration: 1, MaxRate: 0},
		{VolumeBytes: 1 << 30, Duration: 1, MaxRate: 1, ReadFraction: 1.5},
		{VolumeBytes: 1 << 20, Duration: 1, MaxRate: 1, Regions: 1 << 20}, // regions too fine
	}
	for i, cfg := range bad {
		if _, err := NewOLTP(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestCelloBasicProperties(t *testing.T) {
	vol := int64(8) << 30
	g, err := NewCello(CelloConfig{Seed: 1, VolumeBytes: vol, Duration: 2000})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Drain(g, 0)
	if len(reqs) < 100 {
		t.Fatalf("only %d requests", len(reqs))
	}
	for i, r := range reqs {
		if r.Off < 0 || r.Off+r.Size > vol {
			t.Fatalf("request %d outside volume", i)
		}
		if i > 0 && r.Time < reqs[i-1].Time {
			t.Fatalf("time disorder at %d: %v < %v", i, r.Time, reqs[i-1].Time)
		}
		if r.Time > 2000 {
			t.Fatalf("request beyond duration at %d", i)
		}
	}
}

func TestCelloBurstiness(t *testing.T) {
	g, err := NewCello(CelloConfig{Seed: 2, VolumeBytes: 8 << 30, Duration: 5000})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Drain(g, 0)
	// Burstiness: the squared coefficient of variation of inter-arrivals
	// should far exceed 1 (Poisson).
	var gaps []float64
	for i := 1; i < len(reqs); i++ {
		gaps = append(gaps, reqs[i].Time-reqs[i-1].Time)
	}
	mean, m2 := 0.0, 0.0
	for _, x := range gaps {
		mean += x
	}
	mean /= float64(len(gaps))
	for _, x := range gaps {
		m2 += (x - mean) * (x - mean)
	}
	cv2 := m2 / float64(len(gaps)) / (mean * mean)
	if cv2 < 2 {
		t.Errorf("inter-arrival CV^2 = %v; want bursty (>2)", cv2)
	}
}

func TestCelloSequentiality(t *testing.T) {
	g, err := NewCello(CelloConfig{Seed: 3, VolumeBytes: 8 << 30, Duration: 3000})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Drain(g, 0)
	seq := 0
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Off == reqs[i-1].Off+reqs[i-1].Size {
			seq++
		}
	}
	frac := float64(seq) / float64(len(reqs)-1)
	if frac < 0.3 {
		t.Errorf("sequential fraction %v, want >= 0.3", frac)
	}
}

func TestCelloVolumeSkew(t *testing.T) {
	g, err := NewCello(CelloConfig{Seed: 4, VolumeBytes: 8 << 30, Duration: 5000, Volumes: 8})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Drain(g, 0)
	volBytes := int64(8<<30) / 8
	counts := make([]int, 8)
	for _, r := range reqs {
		counts[r.Off/volBytes]++
	}
	if counts[0] <= counts[7] {
		t.Errorf("volume 0 (%d) should outweigh volume 7 (%d)", counts[0], counts[7])
	}
}

func TestCelloDiurnalTrough(t *testing.T) {
	day := 2000.0
	g, err := NewCello(CelloConfig{
		Seed: 5, VolumeBytes: 8 << 30, Duration: day,
		DayPeriod: day, NightRate: 0.001, DayRate: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := Drain(g, 0)
	var night, dayCount int
	for _, r := range reqs {
		if r.Time < day/8 || r.Time > day*7/8 {
			night++
		} else if r.Time > day*3/8 && r.Time < day*5/8 {
			dayCount++
		}
	}
	if dayCount < 5*night {
		t.Errorf("diurnal trough not visible: day=%d night=%d", dayCount, night)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	g := oltpFor(t, OLTPConfig{Seed: 9, VolumeBytes: 1 << 30, Duration: 5, MaxRate: 100})
	orig := Drain(g, 0)
	var buf bytes.Buffer
	n, err := WriteCSV(&buf, NewSliceSource(orig))
	if err != nil || n != len(orig) {
		t.Fatalf("WriteCSV n=%d err=%v", n, err)
	}
	src, err := NewCSVSource(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := Drain(src, 0)
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("round trip %d, want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Off != orig[i].Off || got[i].Size != orig[i].Size || got[i].Write != orig[i].Write {
			t.Fatalf("request %d mismatch: %+v vs %+v", i, got[i], orig[i])
		}
		if math.Abs(got[i].Time-orig[i].Time) > 1e-6 {
			t.Fatalf("request %d time drift", i)
		}
	}
}

func TestCSVRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"bogus header\n1,2,3,R\n",
		"time,offset,size,rw\n1,2,3\n",
		"time,offset,size,rw\nx,2,3,R\n",
		"time,offset,size,rw\n1,2,3,Q\n",
		"time,offset,size,rw\n5,2,3,R\n1,2,3,R\n", // time backwards
	}
	for i, s := range cases {
		src, err := NewCSVSource(strings.NewReader(s))
		if err != nil {
			continue // header-level rejection is fine
		}
		Drain(src, 0)
		if src.Err() == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestCharacterize(t *testing.T) {
	reqs := []Request{
		{Time: 0, Off: 0, Size: 4096, Write: false},
		{Time: 1, Off: 1 << 20, Size: 8192, Write: true},
		{Time: 2, Off: 0, Size: 4096, Write: false},
		{Time: 3, Off: 0, Size: 4096, Write: false},
	}
	c := Characterize(reqs)
	if c.Count != 4 {
		t.Errorf("Count = %d", c.Count)
	}
	if math.Abs(c.ReadFraction-0.75) > 1e-12 {
		t.Errorf("ReadFraction = %v", c.ReadFraction)
	}
	if math.Abs(c.MeanSizeBytes-5120) > 1e-9 {
		t.Errorf("MeanSize = %v", c.MeanSizeBytes)
	}
	if math.Abs(c.MeanInterarrival-1) > 1e-12 {
		t.Errorf("MeanInterarrival = %v", c.MeanInterarrival)
	}
	if Characterize(nil).Count != 0 {
		t.Error("empty trace should characterize as zero")
	}
}

func TestZipfRanksAreScattered(t *testing.T) {
	// The permutation must scatter hot ranks; the top-8 hot regions should
	// not be one contiguous run.
	g := oltpFor(t, OLTPConfig{Seed: 11, VolumeBytes: 1 << 30, Duration: 1, MaxRate: 1, Regions: 256})
	hot := g.HotRegions(8)
	sorted := append([]int64(nil), hot...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	contiguous := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1]+1 {
			contiguous = false
		}
	}
	if contiguous {
		t.Error("hot regions are contiguous; permutation is not scattering")
	}
}

func TestScaleTransformsTimeAndAddresses(t *testing.T) {
	reqs := []Request{
		{Time: 1, Off: 1000, Size: 100},
		{Time: 2, Off: 5000, Size: 100},
	}
	got := Drain(NewScale(NewSliceSource(reqs), 2.0, 0.5, 0), 0)
	if got[0].Time != 2 || got[1].Time != 4 {
		t.Errorf("times = %v, %v", got[0].Time, got[1].Time)
	}
	if got[0].Off != 500 || got[1].Off != 2500 {
		t.Errorf("offsets = %d, %d", got[0].Off, got[1].Off)
	}
}

func TestScaleFoldsIntoVolume(t *testing.T) {
	reqs := []Request{{Time: 1, Off: 10000, Size: 100}}
	got := Drain(NewScale(NewSliceSource(reqs), 1, 1, 4096), 0)
	if got[0].Off+got[0].Size > 4096 || got[0].Off < 0 {
		t.Errorf("folded offset %d escapes the volume", got[0].Off)
	}
}

func TestScaleRejectsBadFactors(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive factors must panic")
		}
	}()
	NewScale(NewSliceSource(nil), 0, 1, 0)
}

func BenchmarkOLTPGeneration(b *testing.B) {
	g, err := NewOLTP(OLTPConfig{Seed: 1, VolumeBytes: 100 << 30, Duration: 1e12, MaxRate: 100})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkCelloGeneration(b *testing.B) {
	g, err := NewCello(CelloConfig{Seed: 1, VolumeBytes: 100 << 30, Duration: 1e12})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}
