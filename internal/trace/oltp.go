package trace

import (
	"fmt"
	"math/rand"

	"hibernator/internal/dist"
)

// OLTPConfig parameterizes the OLTP-like generator: small random I/O with
// Zipf-skewed spatial popularity and Poisson (optionally time-varying)
// arrivals, the request mix a TPC-C-style database pushes to its array.
type OLTPConfig struct {
	Seed        int64
	VolumeBytes int64
	Duration    float64 // seconds of trace to emit

	// Rate is the arrival-rate profile; MaxRate must bound it. If Rate is
	// nil, a constant MaxRate is used.
	Rate    dist.RateFunc
	MaxRate float64

	// ZipfS is the popularity skew across regions (default 1.2); Regions
	// is the popularity granularity (default 4096).
	ZipfS   float64
	Regions int

	// ReadFraction defaults to 0.66 (2 reads : 1 write, TPC-C-like).
	ReadFraction float64

	// SizesBytes/SizeWeights describe the request-size mix; default
	// 4 KiB/8 KiB/16 KiB at weights 0.25/0.60/0.15.
	SizesBytes  []int64
	SizeWeights []float64

	// Align rounds offsets down (default 4096).
	Align int64
}

func (c *OLTPConfig) applyDefaults() error {
	if c.VolumeBytes <= 0 {
		return fmt.Errorf("trace: oltp needs positive volume size, got %d", c.VolumeBytes)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("trace: oltp needs positive duration, got %v", c.Duration)
	}
	if c.MaxRate <= 0 {
		return fmt.Errorf("trace: oltp needs positive max rate, got %v", c.MaxRate)
	}
	if c.Rate == nil {
		c.Rate = dist.ConstantRate(c.MaxRate)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.Regions == 0 {
		c.Regions = 4096
	}
	if c.Regions < 1 {
		return fmt.Errorf("trace: oltp needs at least one region, got %d", c.Regions)
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.66
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("trace: read fraction %v outside [0,1]", c.ReadFraction)
	}
	if len(c.SizesBytes) == 0 {
		c.SizesBytes = []int64{4096, 8192, 16384}
		c.SizeWeights = []float64{0.25, 0.60, 0.15}
	}
	if len(c.SizesBytes) != len(c.SizeWeights) {
		return fmt.Errorf("trace: %d sizes but %d weights", len(c.SizesBytes), len(c.SizeWeights))
	}
	if c.Align == 0 {
		c.Align = 4096
	}
	return nil
}

// OLTP generates the OLTP-like stream lazily.
type OLTP struct {
	cfg     OLTPConfig
	rng     *rand.Rand
	arr     *dist.NonHomogeneousPoisson
	zipf    *dist.Zipf
	sizes   *dist.Choice
	isRead  *dist.Bernoulli
	perm    []int32 // popularity rank -> region index
	regionB int64   // bytes per region
	now     float64
}

// NewOLTP validates the config and builds the generator. Popularity ranks
// are scattered across the address space by a seeded permutation so that
// hot data is not physically contiguous — the layout migration policies
// must find it.
func NewOLTP(cfg OLTPConfig) (*OLTP, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	rng := dist.Source(cfg.Seed)
	perm := make([]int32, cfg.Regions)
	for i := range perm {
		perm[i] = int32(i)
	}
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	g := &OLTP{
		cfg:     cfg,
		rng:     rng,
		arr:     dist.NewNonHomogeneousPoisson(rng, cfg.Rate, cfg.MaxRate),
		zipf:    dist.NewZipf(rng, cfg.ZipfS, uint64(cfg.Regions)),
		sizes:   dist.NewChoice(rng, cfg.SizeWeights),
		isRead:  dist.NewBernoulli(rng, cfg.ReadFraction),
		perm:    perm,
		regionB: cfg.VolumeBytes / int64(cfg.Regions),
	}
	if g.regionB < cfg.Align {
		return nil, fmt.Errorf("trace: volume %d too small for %d regions at alignment %d",
			cfg.VolumeBytes, cfg.Regions, cfg.Align)
	}
	return g, nil
}

// Next implements Source.
func (g *OLTP) Next() (Request, bool) {
	t := g.arr.Next(g.now)
	if t > g.cfg.Duration {
		return Request{}, false
	}
	g.now = t
	rank := g.zipf.Sample()
	region := int64(g.perm[rank])
	size := g.cfg.SizesBytes[g.sizes.Sample()]
	if size > g.regionB {
		size = g.regionB
	}
	span := g.regionB - size
	var within int64
	if span > 0 {
		within = (g.rng.Int63n(span + 1)) / g.cfg.Align * g.cfg.Align
	}
	off := region*g.regionB + within
	if off+size > g.cfg.VolumeBytes {
		off = g.cfg.VolumeBytes - size
	}
	return Request{Time: t, Off: off, Size: size, Write: !g.isRead.Sample()}, true
}

// HotRegions returns the region indices holding the top `n` popularity
// ranks — tests use it to check that migration policies find the hot set.
func (g *OLTP) HotRegions(n int) []int64 {
	if n > len(g.perm) {
		n = len(g.perm)
	}
	out := make([]int64, n)
	for i := 0; i < n; i++ {
		out[i] = int64(g.perm[i])
	}
	return out
}

// RegionBytes returns the popularity-region size in bytes.
func (g *OLTP) RegionBytes() int64 { return g.regionB }
