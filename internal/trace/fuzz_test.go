package trace

import (
	"math"
	"strings"
	"testing"
)

// FuzzCSVSource drains arbitrary CSV input through the trace parser: it
// must never panic, and every request it does emit must satisfy the
// stream invariants the simulator relies on (finite non-negative and
// non-decreasing times, non-negative offsets, positive sizes).
func FuzzCSVSource(f *testing.F) {
	f.Add("time,offset,size,rw\n0.5,0,4096,R\n1.0,8192,512,W\n")
	// Nasty corpus: NaN/Inf/negative times, backwards time, negative
	// offsets, zero and negative sizes, wrong field counts, junk rw
	// flags, missing header, empty input.
	f.Add("")
	f.Add("time,offset,size,rw\n")
	f.Add("time,offset,size,rw\nNaN,0,1,R\n")
	f.Add("time,offset,size,rw\n+Inf,0,1,R\n")
	f.Add("time,offset,size,rw\n-1,0,1,R\n")
	f.Add("time,offset,size,rw\n2,0,1,R\n1,0,1,R\n")
	f.Add("time,offset,size,rw\n1,-5,1,R\n")
	f.Add("time,offset,size,rw\n1,0,0,R\n")
	f.Add("time,offset,size,rw\n1,0,-1,W\n")
	f.Add("time,offset,size,rw\n1,0,1\n")
	f.Add("time,offset,size,rw\n1,0,1,X\n")
	f.Add("time,offset,size,rw\n1,0,1,R,extra\n")
	f.Add("wrong,header\n1,0,1,R\n")
	f.Add("time,offset,size,rw\n1e309,0,1,R\n")

	f.Fuzz(func(t *testing.T, in string) {
		src, err := NewCSVSource(strings.NewReader(in))
		if err != nil {
			return
		}
		last := 0.0
		for i := 0; i < 1<<16; i++ {
			r, ok := src.Next()
			if !ok {
				break
			}
			if math.IsNaN(r.Time) || math.IsInf(r.Time, 0) || r.Time < 0 {
				t.Fatalf("emitted bad time %v", r.Time)
			}
			if r.Time < last {
				t.Fatalf("emitted backwards time %v after %v", r.Time, last)
			}
			last = r.Time
			if r.Off < 0 {
				t.Fatalf("emitted negative offset %d", r.Off)
			}
			if r.Size <= 0 {
				t.Fatalf("emitted non-positive size %d", r.Size)
			}
		}
	})
}

// TestCSVSourceStructuredErrors pins the hardened rejections satellite 1
// asks for: each bad line is a line-numbered error, never a panic and
// never a silently-accepted request.
func TestCSVSourceStructuredErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"nan time", "1,0,4096,R\nNaN,0,4096,R\n", "line 3: time must be finite"},
		{"inf time", "Inf,0,4096,R\n", "line 2: time must be finite"},
		{"negative time", "-0.5,0,4096,R\n", "line 2: time must be finite and >= 0"},
		{"negative offset", "1,-4096,512,R\n", "line 2: offset must be >= 0"},
		{"zero size", "1,0,0,R\n", "line 2: size must be positive"},
		{"negative size", "1,0,-512,W\n", "line 2: size must be positive"},
		{"bad time text", "soon,0,512,R\n", `line 2: bad time "soon"`},
		{"bad offset text", "1,here,512,R\n", `line 2: bad offset "here"`},
		{"bad size text", "1,0,big,R\n", `line 2: bad size "big"`},
		{"bad rw", "1,0,512,Z\n", `line 2: rw field "Z"`},
		{"field count", "1,0,512\n", "line 2: want 4 fields, got 3"},
		{"backwards", "2,0,512,R\n1,0,512,R\n", "line 3: time went backwards"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := NewCSVSource(strings.NewReader("time,offset,size,rw\n" + tc.in))
			if err != nil {
				t.Fatalf("header rejected: %v", err)
			}
			for {
				if _, ok := src.Next(); !ok {
					break
				}
			}
			if src.Err() == nil {
				t.Fatal("bad input fully accepted")
			}
			if !strings.Contains(src.Err().Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", src.Err(), tc.want)
			}
		})
	}
}

func TestCSVSourceRejectsOverlongLine(t *testing.T) {
	in := "time,offset,size,rw\n1,0," + strings.Repeat("9", maxCSVLine+10) + ",R\n"
	src, err := NewCSVSource(strings.NewReader(in))
	if err != nil {
		t.Fatalf("header rejected: %v", err)
	}
	for {
		if _, ok := src.Next(); !ok {
			break
		}
	}
	if err := src.Err(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want over-long line error, got %v", err)
	}
}
