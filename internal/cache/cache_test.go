package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReadMissThenHit(t *testing.T) {
	c := New(1024, 256) // 4 blocks
	misses, ev := c.Read(0, 256)
	if len(ev) != 0 {
		t.Fatalf("unexpected evictions %v", ev)
	}
	if len(misses) != 1 || misses[0] != (Range{0, 256}) {
		t.Fatalf("misses = %v, want [{0 256}]", misses)
	}
	misses, _ = c.Read(0, 256)
	if len(misses) != 0 {
		t.Fatalf("second read missed: %v", misses)
	}
	hits, ms, _ := c.Stats()
	if hits != 1 || ms != 1 {
		t.Errorf("stats hits=%d misses=%d, want 1,1", hits, ms)
	}
}

func TestReadSpanningBlocksCoalesces(t *testing.T) {
	c := New(4096, 256)
	misses, _ := c.Read(100, 600) // blocks 0..2
	if len(misses) != 1 {
		t.Fatalf("misses = %v, want one coalesced range", misses)
	}
	if misses[0] != (Range{0, 768}) {
		t.Errorf("miss range = %v, want {0 768}", misses[0])
	}
}

func TestPartialHitSplitsMisses(t *testing.T) {
	c := New(4096, 256)
	c.Read(256, 256) // cache block 1
	misses, _ := c.Read(0, 768)
	// Blocks 0 and 2 miss; block 1 hits. Non-adjacent: two ranges.
	if len(misses) != 2 {
		t.Fatalf("misses = %v, want two ranges", misses)
	}
	if misses[0] != (Range{0, 256}) || misses[1] != (Range{512, 256}) {
		t.Errorf("misses = %v", misses)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(512, 256) // 2 blocks
	c.Read(0, 256)     // block 0
	c.Read(256, 256)   // block 1
	c.Read(0, 256)     // touch block 0 -> block 1 is LRU
	c.Read(512, 256)   // block 2 evicts block 1
	if !c.Contains(0) || c.Contains(256) || !c.Contains(512) {
		t.Error("LRU evicted the wrong block")
	}
}

func TestWriteBackEvictionDestages(t *testing.T) {
	c := New(512, 256) // 2 blocks
	if ev := c.Write(0, 256); len(ev) != 0 {
		t.Fatalf("unexpected destage %v", ev)
	}
	c.Write(256, 256)
	ev := c.Write(512, 256) // evicts dirty block 0
	if len(ev) != 1 || ev[0] != (Range{0, 256}) {
		t.Fatalf("destage = %v, want [{0 256}]", ev)
	}
	if c.DirtyLen() != 2 {
		t.Errorf("DirtyLen = %d, want 2", c.DirtyLen())
	}
}

func TestCleanEvictionIsFree(t *testing.T) {
	c := New(512, 256)
	c.Read(0, 256)
	c.Read(256, 256)
	if _, ev := c.Read(512, 256); len(ev) != 0 {
		t.Fatalf("clean eviction produced destages %v", ev)
	}
}

func TestWriteHitMarksDirtyOnce(t *testing.T) {
	c := New(1024, 256)
	c.Write(0, 256)
	c.Write(0, 256)
	if c.DirtyLen() != 1 {
		t.Errorf("DirtyLen = %d, want 1", c.DirtyLen())
	}
}

func TestReadDoesNotCleanDirty(t *testing.T) {
	c := New(1024, 256)
	c.Write(0, 256)
	c.Read(0, 256)
	if c.DirtyLen() != 1 {
		t.Error("read hit must not clean a dirty block")
	}
}

func TestFlushOldest(t *testing.T) {
	c := New(2048, 256)
	c.Write(0, 256)
	c.Write(512, 256)
	c.Write(1024, 256)
	out := c.FlushOldest(2)
	// Oldest-first: blocks 0 and 2 (non-adjacent) -> two ranges.
	if len(out) != 2 || out[0] != (Range{0, 256}) || out[1] != (Range{512, 256}) {
		t.Fatalf("flush = %v", out)
	}
	if c.DirtyLen() != 1 {
		t.Errorf("DirtyLen = %d, want 1", c.DirtyLen())
	}
	// Flushed blocks stay resident and clean.
	if misses, _ := c.Read(0, 256); len(misses) != 0 {
		t.Error("flushed block evicted from cache")
	}
	// Evicting a now-clean block must not destage again.
	if out := c.FlushOldest(10); len(out) != 1 {
		t.Errorf("second flush = %v, want remaining single range", out)
	}
}

func TestZeroCapacityPassesThrough(t *testing.T) {
	c := New(0, 256)
	misses, ev := c.Read(100, 50)
	if len(ev) != 0 || len(misses) != 1 || misses[0] != (Range{100, 50}) {
		t.Fatalf("zero-cap read = %v/%v", misses, ev)
	}
	w := c.Write(100, 50)
	if len(w) != 1 || w[0] != (Range{100, 50}) {
		t.Fatalf("zero-cap write = %v", w)
	}
}

func TestCoalesceHandlesDuplicatesAndGaps(t *testing.T) {
	got := coalesce([]int64{5, 1, 2, 2, 9, 0}, 10)
	want := []Range{{0, 30}, {50, 10}, {90, 10}}
	if len(got) != len(want) {
		t.Fatalf("coalesce = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coalesce = %v, want %v", got, want)
		}
	}
}

// Property: resident block count never exceeds capacity, and a block is
// dirty only if resident.
func TestInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(16*256, 256)
		for i := 0; i < 2000; i++ {
			off := int64(rng.Intn(100)) * 256
			size := int64(1 + rng.Intn(1000))
			switch rng.Intn(3) {
			case 0:
				c.Read(off, size)
			case 1:
				c.Write(off, size)
			case 2:
				c.FlushOldest(rng.Intn(4))
			}
			if c.Len() > 16 {
				return false
			}
			if c.DirtyLen() > c.Len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: total destaged bytes never exceed total dirtied bytes.
func TestDestageConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(8*512, 512)
	var dirtied, destaged int64
	for i := 0; i < 5000; i++ {
		off := int64(rng.Intn(64)) * 512
		if rng.Intn(2) == 0 {
			before := c.DirtyLen()
			ev := c.Write(off, 512)
			after := c.DirtyLen()
			dirtied += int64(after-before) * 512
			for _, r := range ev {
				destaged += r.Size
				dirtied += r.Size // the evicted dirty block's slot was freed
			}
		} else {
			for _, r := range c.FlushOldest(rng.Intn(3)) {
				destaged += r.Size
			}
		}
	}
	// Remaining dirty blocks haven't been destaged yet.
	if destaged > dirtied {
		t.Errorf("destaged %d > dirtied %d", destaged, dirtied)
	}
}

func BenchmarkCacheReadHit(b *testing.B) {
	c := New(1<<30, 64<<10)
	c.Read(0, 64<<10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0, 64<<10)
	}
}

func BenchmarkCacheWriteMixed(b *testing.B) {
	c := New(64<<20, 64<<10)
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(rng.Intn(1<<14)) * (64 << 10)
		if i%3 == 0 {
			c.Write(off, 8192)
		} else {
			c.Read(off, 8192)
		}
	}
}
