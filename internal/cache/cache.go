// Package cache implements the array controller cache: a block-granular
// LRU with write-back semantics. Reads that hit are absorbed; writes are
// absorbed and marked dirty; evicting a dirty block emits a destage write
// the array must perform. A background destager can drain dirty blocks
// oldest-first.
//
// The cache is pure bookkeeping — it never performs I/O itself; it tells
// the caller which byte ranges must move.
package cache

import (
	"container/list"
	"fmt"
)

// Range is a contiguous logical byte range.
type Range struct {
	Off  int64
	Size int64
}

// Cache is a block LRU. Not safe for concurrent use; the simulator is
// single-threaded.
type Cache struct {
	blockSize int64
	capacity  int // in blocks

	lru     *list.List // front = most recent
	entries map[int64]*list.Element

	dirty      map[int64]bool
	dirtyOrder *list.List // front = oldest dirty, for destage
	dirtyElem  map[int64]*list.Element

	hits       uint64
	misses     uint64
	destages   uint64
	writeHits  uint64
	writeAlloc uint64

	// lookups counters exist so `hits + misses == readLookups` (and the
	// write-side equivalent) can be checked as an invariant; they are
	// incremented in exactly one place each.
	readLookups  uint64
	writeLookups uint64
}

type entry struct {
	block int64
	dirty bool
}

// New creates a cache of capacityBytes split into blockSize blocks. A zero
// or negative capacity yields a cache that misses everything (useful for
// "no cache" configurations).
func New(capacityBytes, blockSize int64) *Cache {
	if blockSize <= 0 {
		panic(fmt.Sprintf("cache: block size must be positive, got %d", blockSize))
	}
	capBlocks := int(capacityBytes / blockSize)
	if capBlocks < 0 {
		capBlocks = 0
	}
	return &Cache{
		blockSize:  blockSize,
		capacity:   capBlocks,
		lru:        list.New(),
		entries:    map[int64]*list.Element{},
		dirty:      map[int64]bool{},
		dirtyOrder: list.New(),
		dirtyElem:  map[int64]*list.Element{},
	}
}

// BlockSize returns the cache block size in bytes.
func (c *Cache) BlockSize() int64 { return c.blockSize }

// Len returns the number of resident blocks.
func (c *Cache) Len() int { return c.lru.Len() }

// DirtyLen returns the number of dirty resident blocks.
func (c *Cache) DirtyLen() int { return c.dirtyOrder.Len() }

// Stats returns lifetime hit/miss/destage counters. Hits and misses count
// blocks, not requests.
func (c *Cache) Stats() (hits, misses, destages uint64) {
	return c.hits, c.misses, c.destages
}

// Lookups returns how many block lookups Read and Write performed. Every
// read lookup is a hit or a miss, and every write lookup a write-hit or a
// write-allocate — the conservation the invariant checker verifies.
func (c *Cache) Lookups() (read, write uint64) {
	return c.readLookups, c.writeLookups
}

// WriteStats returns the write-side block counters: blocks absorbed into
// resident entries and blocks allocated on write.
func (c *Cache) WriteStats() (writeHits, writeAllocs uint64) {
	return c.writeHits, c.writeAlloc
}

// blocksOf enumerates the block indices overlapping [off, off+size).
func (c *Cache) blocksOf(off, size int64) (first, last int64) {
	if off < 0 || size <= 0 {
		panic(fmt.Sprintf("cache: invalid range [%d,+%d)", off, size))
	}
	return off / c.blockSize, (off + size - 1) / c.blockSize
}

// Read looks up a logical range. It returns the byte ranges that missed
// (coalesced, block-aligned) and any dirty blocks evicted while inserting
// the missed blocks. The caller must read the misses from the array and
// write back the evictions.
func (c *Cache) Read(off, size int64) (misses, evictions []Range) {
	if c.capacity == 0 {
		return []Range{{Off: off, Size: size}}, nil
	}
	first, last := c.blocksOf(off, size)
	var missBlocks []int64
	for b := first; b <= last; b++ {
		c.readLookups++
		if el, ok := c.entries[b]; ok {
			c.hits++
			c.lru.MoveToFront(el)
			continue
		}
		c.misses++
		missBlocks = append(missBlocks, b)
	}
	for _, b := range missBlocks {
		evictions = append(evictions, c.insert(b, false)...)
	}
	return coalesce(missBlocks, c.blockSize), evictions
}

// Write absorbs a logical write, marking the covered blocks dirty, and
// returns any dirty blocks evicted to make room. Partially covered blocks
// are treated as allocate-on-write (no fetch-before-write; the simulated
// destage rewrites whole blocks, a standard simplification).
func (c *Cache) Write(off, size int64) (evictions []Range) {
	if c.capacity == 0 {
		return []Range{{Off: off, Size: size}}
	}
	first, last := c.blocksOf(off, size)
	for b := first; b <= last; b++ {
		c.writeLookups++
		if el, ok := c.entries[b]; ok {
			c.writeHits++
			c.lru.MoveToFront(el)
			c.markDirty(el.Value.(*entry))
			continue
		}
		c.writeAlloc++
		evictions = append(evictions, c.insert(b, true)...)
	}
	return evictions
}

// insert adds a block (evicting as needed) and returns destage ranges for
// evicted dirty blocks.
func (c *Cache) insert(block int64, dirty bool) []Range {
	var destage []int64
	for c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.lru.Remove(back)
		delete(c.entries, ev.block)
		if ev.dirty {
			c.destages++
			destage = append(destage, ev.block)
			c.unmarkDirty(ev.block)
		}
	}
	e := &entry{block: block, dirty: false}
	c.entries[block] = c.lru.PushFront(e)
	if dirty {
		c.markDirty(e)
	}
	return coalesce(destage, c.blockSize)
}

func (c *Cache) markDirty(e *entry) {
	if e.dirty {
		return
	}
	e.dirty = true
	c.dirty[e.block] = true
	c.dirtyElem[e.block] = c.dirtyOrder.PushBack(e.block)
}

func (c *Cache) unmarkDirty(block int64) {
	if el, ok := c.dirtyElem[block]; ok {
		c.dirtyOrder.Remove(el)
		delete(c.dirtyElem, block)
	}
	delete(c.dirty, block)
}

// FlushOldest cleans up to max dirty blocks (oldest first) and returns the
// ranges to write out. The blocks stay resident, now clean.
func (c *Cache) FlushOldest(max int) []Range {
	var blocks []int64
	for i := 0; i < max; i++ {
		front := c.dirtyOrder.Front()
		if front == nil {
			break
		}
		b := front.Value.(int64)
		if el, ok := c.entries[b]; ok {
			el.Value.(*entry).dirty = false
		}
		c.unmarkDirty(b)
		c.destages++
		blocks = append(blocks, b)
	}
	return coalesce(blocks, c.blockSize)
}

// Fingerprint digests the cache's full structural state — the resident
// set in LRU order with per-block dirty bits, and the destage queue in
// age order — for snapshot comparison. Counters are deliberately
// excluded; they have their own accessors and snapshot keys.
func (c *Cache) Fingerprint() uint64 {
	const prime = 1099511628211
	mix := func(h, v uint64) uint64 {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
		return h
	}
	h := mix(14695981039346656037, uint64(c.blockSize))
	h = mix(h, uint64(c.capacity))
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		v := uint64(e.block) << 1
		if e.dirty {
			v |= 1
		}
		h = mix(h, v)
	}
	for el := c.dirtyOrder.Front(); el != nil; el = el.Next() {
		h = mix(h, uint64(el.Value.(int64)))
	}
	return h
}

// Contains reports whether the block holding the byte offset is resident.
func (c *Cache) Contains(off int64) bool {
	_, ok := c.entries[off/c.blockSize]
	return ok
}

// coalesce turns sorted-ish block lists into merged byte ranges. Blocks
// may arrive unsorted; adjacent blocks merge.
func coalesce(blocks []int64, blockSize int64) []Range {
	if len(blocks) == 0 {
		return nil
	}
	sorted := append([]int64(nil), blocks...)
	// Insertion sort: lists are tiny and mostly sorted.
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	var out []Range
	start, prev := sorted[0], sorted[0]
	for _, b := range sorted[1:] {
		if b == prev { // duplicate
			continue
		}
		if b == prev+1 {
			prev = b
			continue
		}
		out = append(out, Range{Off: start * blockSize, Size: (prev - start + 1) * blockSize})
		start, prev = b, b
	}
	out = append(out, Range{Off: start * blockSize, Size: (prev - start + 1) * blockSize})
	return out
}
