package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// RateFunc maps simulated time (seconds) to an instantaneous arrival rate
// (requests per second). Workload generators use it to modulate Poisson
// processes.
type RateFunc func(t float64) float64

// ConstantRate returns a RateFunc that always yields rate.
func ConstantRate(rate float64) RateFunc {
	return func(float64) float64 { return rate }
}

// DiurnalRate models a day/night cycle: a sinusoid with the given period
// (typically 24 h) oscillating between base and peak requests/second, with
// the peak at phase*period into each cycle. Night troughs are what TPM-like
// spin-down policies exploit; the Hibernator CR algorithm re-evaluates
// across them.
func DiurnalRate(base, peak, period, phase float64) RateFunc {
	if base < 0 || peak < base || period <= 0 {
		panic(fmt.Sprintf("dist: invalid diurnal rate base=%v peak=%v period=%v", base, peak, period))
	}
	mid := (base + peak) / 2
	amp := (peak - base) / 2
	return func(t float64) float64 {
		return mid + amp*math.Cos(2*math.Pi*(t/period-phase))
	}
}

// StepRate returns a piecewise-constant RateFunc: rates[i] applies from
// boundaries[i-1] (0 for i==0) until boundaries[i]; the final rate applies
// forever. len(boundaries) must be len(rates)-1 and ascending.
func StepRate(rates []float64, boundaries []float64) RateFunc {
	if len(rates) == 0 || len(boundaries) != len(rates)-1 {
		panic("dist: step rate needs len(boundaries) == len(rates)-1")
	}
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			panic("dist: step rate boundaries must ascend")
		}
	}
	return func(t float64) float64 {
		for i, b := range boundaries {
			if t < b {
				return rates[i]
			}
		}
		return rates[len(rates)-1]
	}
}

// NonHomogeneousPoisson draws inter-arrival times from a Poisson process
// whose rate varies with time, via Lewis-Shedler thinning against an upper
// bound on the rate.
type NonHomogeneousPoisson struct {
	rate    RateFunc
	maxRate float64
	exp     *Exponential
}

// NewNonHomogeneousPoisson panics unless maxRate bounds rate from above
// over the simulated horizon (the caller asserts this) and maxRate > 0.
func NewNonHomogeneousPoisson(rng *rand.Rand, rate RateFunc, maxRate float64) *NonHomogeneousPoisson {
	if maxRate <= 0 {
		panic(fmt.Sprintf("dist: NHPP maxRate must be positive, got %v", maxRate))
	}
	return &NonHomogeneousPoisson{
		rate:    rate,
		maxRate: maxRate,
		exp:     NewExponential(rng, maxRate),
	}
}

// Next returns the absolute time of the next arrival after t, or +Inf if
// thinning failed to accept within a generous bound (rate effectively zero).
func (p *NonHomogeneousPoisson) Next(t float64) float64 {
	const maxDraws = 1 << 20
	for i := 0; i < maxDraws; i++ {
		t += p.exp.Sample()
		r := p.rate(t)
		if r < 0 {
			panic(fmt.Sprintf("dist: negative rate %v at t=%v", r, t))
		}
		if r > p.maxRate*(1+1e-9) {
			panic(fmt.Sprintf("dist: rate %v exceeds declared max %v at t=%v", r, p.maxRate, t))
		}
		if p.exp.rng.Float64()*p.maxRate < r {
			return t
		}
	}
	return math.Inf(1)
}
