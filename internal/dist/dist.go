// Package dist provides the seeded random distributions used by the
// workload generators and the disk model.
//
// Every distribution draws from an explicit *rand.Rand so that a simulation
// run is fully reproducible from its configuration. Nothing in this package
// touches the global rand source.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler produces one float64 per call. All continuous distributions in
// this package implement it.
type Sampler interface {
	Sample() float64
}

// Source creates the package's canonical deterministic PRNG for a seed.
func Source(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Exponential samples Exp(rate): mean 1/rate. Used for Poisson
// inter-arrival times.
type Exponential struct {
	rng  *rand.Rand
	rate float64
}

// NewExponential panics unless rate > 0.
func NewExponential(rng *rand.Rand, rate float64) *Exponential {
	if rate <= 0 || math.IsNaN(rate) {
		panic(fmt.Sprintf("dist: exponential rate must be positive, got %v", rate))
	}
	return &Exponential{rng: rng, rate: rate}
}

// Sample returns an Exp(rate) variate.
func (e *Exponential) Sample() float64 {
	return e.rng.ExpFloat64() / e.rate
}

// Mean returns 1/rate.
func (e *Exponential) Mean() float64 { return 1 / e.rate }

// Pareto samples a Pareto distribution with shape alpha and scale xm
// (minimum value). Heavy-tailed: used for burst lengths and idle periods in
// the Cello-like generator.
type Pareto struct {
	rng   *rand.Rand
	alpha float64
	xm    float64
}

// NewPareto panics unless alpha > 0 and xm > 0.
func NewPareto(rng *rand.Rand, alpha, xm float64) *Pareto {
	if alpha <= 0 || xm <= 0 {
		panic(fmt.Sprintf("dist: pareto needs alpha>0, xm>0; got %v, %v", alpha, xm))
	}
	return &Pareto{rng: rng, alpha: alpha, xm: xm}
}

// Sample returns a Pareto(alpha, xm) variate via inverse transform.
func (p *Pareto) Sample() float64 {
	u := p.rng.Float64()
	for u == 0 {
		u = p.rng.Float64()
	}
	return p.xm / math.Pow(u, 1/p.alpha)
}

// Mean returns the distribution mean, or +Inf when alpha <= 1.
func (p *Pareto) Mean() float64 {
	if p.alpha <= 1 {
		return math.Inf(1)
	}
	return p.alpha * p.xm / (p.alpha - 1)
}

// Uniform samples U[lo, hi).
type Uniform struct {
	rng    *rand.Rand
	lo, hi float64
}

// NewUniform panics when hi < lo.
func NewUniform(rng *rand.Rand, lo, hi float64) *Uniform {
	if hi < lo {
		panic(fmt.Sprintf("dist: uniform needs hi >= lo; got [%v,%v)", lo, hi))
	}
	return &Uniform{rng: rng, lo: lo, hi: hi}
}

// Sample returns a U[lo,hi) variate.
func (u *Uniform) Sample() float64 {
	return u.lo + u.rng.Float64()*(u.hi-u.lo)
}

// Zipf samples integers in [0, n) with Zipfian skew s >= 1: rank r drawn
// with probability proportional to 1/(r+1)^s. It wraps math/rand's
// rejection-inversion sampler, which is O(1) per draw.
type Zipf struct {
	z *rand.Zipf
	n uint64
}

// NewZipf panics unless n > 0 and s > 1 (s == 1 is approximated by 1.0001,
// matching common trace-generator practice).
func NewZipf(rng *rand.Rand, s float64, n uint64) *Zipf {
	if n == 0 {
		panic("dist: zipf needs n > 0")
	}
	if s <= 1 {
		s = 1.0001
	}
	z := rand.NewZipf(rng, s, 1, n-1)
	if z == nil {
		panic(fmt.Sprintf("dist: invalid zipf parameters s=%v n=%v", s, n))
	}
	return &Zipf{z: z, n: n}
}

// Sample returns a rank in [0, n); rank 0 is the most popular.
func (z *Zipf) Sample() uint64 { return z.z.Uint64() }

// N returns the support size.
func (z *Zipf) N() uint64 { return z.n }

// Choice samples an index in [0, len(weights)) with probability
// proportional to its weight, using precomputed cumulative sums and binary
// search. Used for per-volume skew in the Cello-like generator.
type Choice struct {
	rng *rand.Rand
	cum []float64
}

// NewChoice panics on an empty or non-positive-total weight vector.
// Individual weights may be zero.
func NewChoice(rng *rand.Rand, weights []float64) *Choice {
	if len(weights) == 0 {
		panic("dist: choice needs at least one weight")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("dist: negative weight %v at %d", w, i))
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		panic("dist: choice weights sum to zero")
	}
	return &Choice{rng: rng, cum: cum}
}

// Sample returns a weighted index.
func (c *Choice) Sample() int {
	target := c.rng.Float64() * c.cum[len(c.cum)-1]
	lo, hi := 0, len(c.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if c.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// LogNormal samples exp(N(mu, sigma)). Used for request-size variation.
type LogNormal struct {
	rng       *rand.Rand
	mu, sigma float64
}

// NewLogNormal panics unless sigma >= 0.
func NewLogNormal(rng *rand.Rand, mu, sigma float64) *LogNormal {
	if sigma < 0 {
		panic(fmt.Sprintf("dist: lognormal sigma must be >= 0, got %v", sigma))
	}
	return &LogNormal{rng: rng, mu: mu, sigma: sigma}
}

// Sample returns a LogNormal(mu, sigma) variate.
func (l *LogNormal) Sample() float64 {
	return math.Exp(l.mu + l.sigma*l.rng.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l *LogNormal) Mean() float64 {
	return math.Exp(l.mu + l.sigma*l.sigma/2)
}

// Bernoulli reports true with probability p.
type Bernoulli struct {
	rng *rand.Rand
	p   float64
}

// NewBernoulli clamps p into [0, 1].
func NewBernoulli(rng *rand.Rand, p float64) *Bernoulli {
	if math.IsNaN(p) {
		panic("dist: bernoulli p is NaN")
	}
	return &Bernoulli{rng: rng, p: math.Max(0, math.Min(1, p))}
}

// Sample returns true with probability p.
func (b *Bernoulli) Sample() bool { return b.rng.Float64() < b.p }

// P returns the success probability.
func (b *Bernoulli) P() float64 { return b.p }
