package dist

import (
	"math"
	"testing"
	"testing/quick"
)

func TestExponentialMean(t *testing.T) {
	rng := Source(1)
	e := NewExponential(rng, 4) // mean 0.25
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := e.Sample()
		if v < 0 {
			t.Fatalf("negative exponential sample %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("empirical mean %v, want ~0.25", mean)
	}
	if e.Mean() != 0.25 {
		t.Errorf("Mean() = %v, want 0.25", e.Mean())
	}
}

func TestExponentialInvalidRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rate <= 0 must panic")
		}
	}()
	NewExponential(Source(1), 0)
}

func TestParetoBoundsAndMean(t *testing.T) {
	rng := Source(2)
	p := NewPareto(rng, 2.5, 3.0)
	sum := 0.0
	const n = 300000
	for i := 0; i < n; i++ {
		v := p.Sample()
		if v < 3.0 {
			t.Fatalf("pareto sample %v below scale 3.0", v)
		}
		sum += v
	}
	mean := sum / n
	want := p.Mean() // 2.5*3/1.5 = 5
	if math.Abs(mean-want)/want > 0.05 {
		t.Errorf("empirical mean %v, want ~%v", mean, want)
	}
}

func TestParetoInfiniteMean(t *testing.T) {
	p := NewPareto(Source(3), 0.9, 1)
	if !math.IsInf(p.Mean(), 1) {
		t.Errorf("alpha<=1 should have infinite mean, got %v", p.Mean())
	}
}

func TestUniformRange(t *testing.T) {
	u := NewUniform(Source(4), -2, 7)
	for i := 0; i < 10000; i++ {
		v := u.Sample()
		if v < -2 || v >= 7 {
			t.Fatalf("uniform sample %v outside [-2,7)", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(Source(5), 1.2, 1000)
	counts := make([]int, 1000)
	const n = 200000
	for i := 0; i < n; i++ {
		r := z.Sample()
		if r >= 1000 {
			t.Fatalf("zipf sample %d out of range", r)
		}
		counts[r]++
	}
	// Rank 0 must dominate rank 100 heavily.
	if counts[0] < 10*counts[100] {
		t.Errorf("expected strong skew: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// Top-10% of ranks should carry well over half the accesses.
	top := 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	if float64(top)/n < 0.5 {
		t.Errorf("top 10%% of ranks carry only %.2f of accesses", float64(top)/n)
	}
}

func TestZipfSEqualOneAccepted(t *testing.T) {
	z := NewZipf(Source(6), 1.0, 10)
	for i := 0; i < 100; i++ {
		if r := z.Sample(); r >= 10 {
			t.Fatalf("sample %d out of range", r)
		}
	}
}

func TestChoiceRespectsWeights(t *testing.T) {
	c := NewChoice(Source(7), []float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[c.Sample()]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio %v, want ~3", ratio)
	}
}

func TestChoicePanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {-1, 2}} {
		weights := weights
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("weights %v must panic", weights)
				}
			}()
			NewChoice(Source(8), weights)
		}()
	}
}

func TestLogNormalMean(t *testing.T) {
	l := NewLogNormal(Source(9), 0, 0.5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += l.Sample()
	}
	mean := sum / n
	want := l.Mean()
	if math.Abs(mean-want)/want > 0.03 {
		t.Errorf("empirical mean %v, want ~%v", mean, want)
	}
}

func TestBernoulli(t *testing.T) {
	b := NewBernoulli(Source(10), 0.3)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if b.Sample() {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("empirical p = %v, want ~0.3", p)
	}
	if NewBernoulli(Source(1), 2).P() != 1 {
		t.Error("p should clamp to 1")
	}
	if NewBernoulli(Source(1), -1).P() != 0 {
		t.Error("p should clamp to 0")
	}
}

func TestDeterminism(t *testing.T) {
	a := NewExponential(Source(99), 1)
	b := NewExponential(Source(99), 1)
	for i := 0; i < 1000; i++ {
		if a.Sample() != b.Sample() {
			t.Fatal("same seed must reproduce the identical stream")
		}
	}
}

func TestDiurnalRate(t *testing.T) {
	day := 86400.0
	r := DiurnalRate(10, 100, day, 0.5) // peak at mid-period
	if v := r(day / 2); math.Abs(v-100) > 1e-9 {
		t.Errorf("rate at peak = %v, want 100", v)
	}
	if v := r(0); math.Abs(v-10) > 1e-9 {
		t.Errorf("rate at trough = %v, want 10", v)
	}
	// Never out of [base, peak].
	for ti := 0.0; ti < 2*day; ti += 977 {
		v := r(ti)
		if v < 10-1e-9 || v > 100+1e-9 {
			t.Fatalf("rate %v at t=%v escapes [10,100]", v, ti)
		}
	}
}

func TestStepRate(t *testing.T) {
	r := StepRate([]float64{5, 50, 7}, []float64{100, 200})
	cases := []struct{ t, want float64 }{
		{0, 5}, {99.9, 5}, {100, 50}, {199, 50}, {200, 7}, {1e9, 7},
	}
	for _, c := range cases {
		if got := r(c.t); got != c.want {
			t.Errorf("rate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestNHPPMatchesConstantPoisson(t *testing.T) {
	// With a constant rate, NHPP arrivals must average 1/rate apart.
	rng := Source(11)
	p := NewNonHomogeneousPoisson(rng, ConstantRate(10), 10)
	tPrev, n, total := 0.0, 0, 0.0
	for i := 0; i < 50000; i++ {
		next := p.Next(tPrev)
		total += next - tPrev
		tPrev = next
		n++
	}
	mean := total / float64(n)
	if math.Abs(mean-0.1) > 0.005 {
		t.Errorf("mean inter-arrival %v, want ~0.1", mean)
	}
}

func TestNHPPThinning(t *testing.T) {
	// Rate is 0 for t<100, then 20. No arrivals should land before 100.
	rng := Source(12)
	r := StepRate([]float64{0, 20}, []float64{100})
	p := NewNonHomogeneousPoisson(rng, r, 20)
	tcur := 0.0
	for i := 0; i < 1000; i++ {
		tcur = p.Next(tcur)
		if tcur < 100 {
			t.Fatalf("arrival at %v during zero-rate interval", tcur)
		}
	}
}

// Property: NHPP arrival times strictly increase.
func TestNHPPMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := Source(seed)
		p := NewNonHomogeneousPoisson(rng, DiurnalRate(1, 30, 1000, 0.3), 30)
		tcur := 0.0
		for i := 0; i < 200; i++ {
			next := p.Next(tcur)
			if next <= tcur {
				return false
			}
			tcur = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
