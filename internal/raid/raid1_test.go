package raid

import "testing"

func TestRAID1Validate(t *testing.T) {
	good := []int{2, 4, 8}
	for _, n := range good {
		g := Geometry{RAID1, n, 65536}
		if err := g.Validate(); err != nil {
			t.Errorf("disks=%d: %v", n, err)
		}
	}
	bad := []int{1, 3, 5}
	for _, n := range bad {
		g := Geometry{RAID1, n, 65536}
		if err := g.Validate(); err == nil {
			t.Errorf("disks=%d should be rejected", n)
		}
	}
}

func TestRAID1Capacity(t *testing.T) {
	g := Geometry{RAID1, 4, 1024}
	if got := g.LogicalCapacity(10240); got != 2*10240 {
		t.Errorf("capacity = %d, want half the raw space", got)
	}
}

func TestRAID1WriteDuplicates(t *testing.T) {
	g := Geometry{RAID1, 4, 1000}
	ios := g.Map(0, 500, true)
	if len(ios) != 2 {
		t.Fatalf("got %d IOs, want mirrored pair: %+v", len(ios), ios)
	}
	if ios[0].Disk/2 != ios[1].Disk/2 || ios[0].Disk == ios[1].Disk {
		t.Errorf("writes landed on %d and %d; want both sides of one pair", ios[0].Disk, ios[1].Disk)
	}
	for _, io := range ios {
		if !io.Write || io.Offset != 0 || io.Size != 500 {
			t.Errorf("bad mirrored write %+v", io)
		}
	}
}

func TestRAID1ReadSingleSide(t *testing.T) {
	g := Geometry{RAID1, 4, 1000}
	ios := g.Map(0, 500, false)
	if len(ios) != 1 {
		t.Fatalf("read produced %d IOs, want 1", len(ios))
	}
}

func TestRAID1ReadsAlternateByRow(t *testing.T) {
	g := Geometry{RAID1, 2, 1000}
	// Same pair (only one), consecutive rows alternate primaries.
	r0 := g.Map(0, 100, false)[0].Disk
	r1 := g.Map(1000, 100, false)[0].Disk
	if r0 == r1 {
		t.Errorf("rows 0 and 1 read from the same side (%d)", r0)
	}
	if r0/2 != r1/2 {
		t.Errorf("rows 0 and 1 left the pair: %d vs %d", r0, r1)
	}
}

func TestRAID1SpansPairs(t *testing.T) {
	g := Geometry{RAID1, 4, 1000}
	// Row 0: strips 0 (pair 0) and 1 (pair 1).
	ios := g.Map(0, 2000, true)
	pairs := map[int]int{}
	for _, io := range ios {
		pairs[io.Disk/2]++
	}
	if len(pairs) != 2 || pairs[0] != 2 || pairs[1] != 2 {
		t.Errorf("pair distribution %v, want 2 writes on each of 2 pairs", pairs)
	}
}

func TestRAID1WriteAmplificationExactlyTwo(t *testing.T) {
	g := Geometry{RAID1, 6, 2048}
	for _, sz := range []int64{100, 2048, 5000, 50000} {
		ios := g.Map(137, sz, true)
		var total int64
		for _, io := range ios {
			if !io.Write {
				t.Fatalf("RAID1 write produced a read: %+v", io)
			}
			total += io.Size
		}
		if total != 2*sz {
			t.Errorf("size %d: wrote %d bytes, want exactly 2x", sz, total)
		}
	}
}
