package raid

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := []Geometry{
		{RAID0, 1, 65536},
		{RAID0, 8, 4096},
		{RAID5, 3, 65536},
		{RAID5, 16, 65536},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Errorf("%+v: unexpected error %v", g, err)
		}
	}
	bad := []Geometry{
		{RAID0, 0, 65536},
		{RAID0, 4, 0},
		{RAID5, 2, 65536},
		{Level(9), 4, 65536},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("%+v: expected error", g)
		}
	}
}

func TestLogicalCapacity(t *testing.T) {
	g0 := Geometry{RAID0, 4, 1024}
	if got := g0.LogicalCapacity(10240); got != 4*10240 {
		t.Errorf("RAID0 capacity = %d, want %d", got, 4*10240)
	}
	g5 := Geometry{RAID5, 4, 1024}
	if got := g5.LogicalCapacity(10240); got != 3*10240 {
		t.Errorf("RAID5 capacity = %d, want %d", got, 3*10240)
	}
	// Rounds down to whole rows.
	if got := g5.LogicalCapacity(1536); got != 3*1024 {
		t.Errorf("RAID5 partial-row capacity = %d, want %d", got, 3*1024)
	}
}

func TestRAID0ReadMapping(t *testing.T) {
	g := Geometry{RAID0, 4, 1000}
	ios := g.Map(0, 4000, false)
	if len(ios) != 4 {
		t.Fatalf("got %d IOs, want 4", len(ios))
	}
	for i, io := range ios {
		if io.Disk != i || io.Offset != 0 || io.Size != 1000 || io.Write || io.Kind != DataRead {
			t.Errorf("io %d = %+v", i, io)
		}
	}
	// Second row lands back on disk 0 at offset 1000.
	ios = g.Map(4000, 500, false)
	if len(ios) != 1 || ios[0].Disk != 0 || ios[0].Offset != 1000 {
		t.Errorf("row-1 mapping = %+v", ios)
	}
}

func TestRAID0UnalignedAccessSplits(t *testing.T) {
	g := Geometry{RAID0, 2, 1000}
	ios := g.Map(900, 200, false)
	if len(ios) != 2 {
		t.Fatalf("got %d IOs, want 2: %+v", len(ios), ios)
	}
	if ios[0].Disk != 0 || ios[0].Offset != 900 || ios[0].Size != 100 {
		t.Errorf("first piece %+v", ios[0])
	}
	if ios[1].Disk != 1 || ios[1].Offset != 0 || ios[1].Size != 100 {
		t.Errorf("second piece %+v", ios[1])
	}
}

func TestRAID5ParityRotation(t *testing.T) {
	g := Geometry{RAID5, 4, 1000}
	seen := map[int]bool{}
	for row := int64(0); row < 4; row++ {
		p := g.parityDisk(row)
		if p < 0 || p >= 4 {
			t.Fatalf("row %d parity disk %d out of range", row, p)
		}
		if seen[p] {
			t.Fatalf("parity disk %d repeats within one rotation cycle", p)
		}
		seen[p] = true
	}
	if g.parityDisk(0) != 3 {
		t.Errorf("left-symmetric row 0 parity = %d, want 3", g.parityDisk(0))
	}
	if g.parityDisk(4) != g.parityDisk(0) {
		t.Error("parity rotation must have period Disks")
	}
}

func TestRAID5SmallWriteIsReadModifyWrite(t *testing.T) {
	g := Geometry{RAID5, 5, 65536}
	ios := g.Map(0, 4096, true)
	// 1 data read + 1 parity read + 1 data write + 1 parity write.
	if len(ios) != 4 {
		t.Fatalf("got %d IOs, want 4: %+v", len(ios), ios)
	}
	counts := map[IOKind]int{}
	for _, io := range ios {
		counts[io.Kind]++
		if io.Size != 4096 {
			t.Errorf("io %+v size, want 4096", io)
		}
	}
	for _, k := range []IOKind{DataRead, DataWrite, ParityRead, ParityWrite} {
		if counts[k] != 1 {
			t.Errorf("kind %v count = %d, want 1", k, counts[k])
		}
	}
	reads, writes := Phases(ios)
	if len(reads) != 2 || len(writes) != 2 {
		t.Errorf("phases %d/%d, want 2/2", len(reads), len(writes))
	}
	// Data and parity must be on different disks.
	if ios[0].Disk == ios[1].Disk {
		t.Error("data and parity on same disk")
	}
}

func TestRAID5FullStripeWriteSkipsPrereads(t *testing.T) {
	g := Geometry{RAID5, 5, 65536}
	rowBytes := int64(4) * 65536 // 4 data strips per row
	ios := g.Map(0, rowBytes, true)
	for _, io := range ios {
		if !io.Write {
			t.Fatalf("full-stripe write issued a pre-read: %+v", io)
		}
	}
	// 4 data writes + 1 parity write, parity covering the whole strip.
	if len(ios) != 5 {
		t.Fatalf("got %d IOs, want 5", len(ios))
	}
	var parity *PhysIO
	disks := map[int]bool{}
	for i := range ios {
		if ios[i].Kind == ParityWrite {
			parity = &ios[i]
		}
		if disks[ios[i].Disk] {
			t.Fatalf("two IOs on one disk in a full-stripe write: %+v", ios)
		}
		disks[ios[i].Disk] = true
	}
	if parity == nil || parity.Size != 65536 {
		t.Fatalf("parity write = %+v, want full strip", parity)
	}
}

func TestRAID5MultiRowWrite(t *testing.T) {
	g := Geometry{RAID5, 4, 1000}
	// 3 data strips per row; write 1.5 rows starting at row boundary.
	ios := g.Map(0, 4500, true)
	reads, writes := Phases(ios)
	// Row 0 full (3 data writes + parity write, no reads); row 1 partial
	// (strip reads+writes + parity read+write). Disk 0's row-0 and row-1
	// data writes are physically contiguous and coalesce into one op.
	wantReads := 3  // 2 data (1000+500 split into 2 strips) + 1 parity
	wantWrites := 6 // row0: 3 data + 1 parity; row1: 2 data + 1 parity, minus 1 merged
	if len(reads) != wantReads || len(writes) != wantWrites {
		t.Fatalf("reads=%d writes=%d, want %d/%d\nreads: %+v\nwrites: %+v",
			len(reads), len(writes), wantReads, wantWrites, reads, writes)
	}
}

func TestPhasesNoWrites(t *testing.T) {
	g := Geometry{RAID5, 4, 1000}
	reads, writes := Phases(g.Map(0, 3000, false))
	if len(writes) != 0 || len(reads) != 3 {
		t.Errorf("read mapping phases %d/%d", len(reads), len(writes))
	}
}

// Property: reads of distinct logical strips never collide on (disk,
// physical strip), i.e. the mapping is injective.
func TestMappingInjectiveProperty(t *testing.T) {
	geos := []Geometry{
		{RAID0, 4, 1024},
		{RAID5, 4, 1024},
		{RAID5, 7, 1024},
	}
	for _, g := range geos {
		seen := map[string]int64{}
		for s := int64(0); s < 5000; s++ {
			disk, row := g.stripLocation(s)
			key := fmt.Sprintf("%d/%d", disk, row)
			if prev, dup := seen[key]; dup {
				t.Fatalf("%v: strips %d and %d both map to %s", g, prev, s, key)
			}
			seen[key] = s
		}
	}
}

// Property: data strips never land on their row's parity disk.
func TestDataAvoidsParityDiskProperty(t *testing.T) {
	f := func(rawStrip uint32, rawDisks uint8) bool {
		disks := 3 + int(rawDisks%14)
		g := Geometry{RAID5, disks, 4096}
		s := int64(rawStrip % 1_000_000)
		disk, row := g.stripLocation(s)
		return disk != g.parityDisk(row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: mapped read bytes exactly cover the logical request.
func TestReadCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	geos := []Geometry{
		{RAID0, 3, 700},
		{RAID5, 5, 512},
	}
	for iter := 0; iter < 500; iter++ {
		g := geos[iter%len(geos)]
		off := int64(rng.Intn(100000))
		size := int64(1 + rng.Intn(9000))
		total := int64(0)
		for _, io := range g.Map(off, size, false) {
			total += io.Size
			if io.Size <= 0 || io.Size > size {
				t.Fatalf("io size %d out of range (coalesced ops are bounded by the request)", io.Size)
			}
			if io.Offset < 0 {
				t.Fatalf("negative physical offset %d", io.Offset)
			}
			if io.Disk < 0 || io.Disk >= g.Disks {
				t.Fatalf("disk %d out of range", io.Disk)
			}
		}
		if total != size {
			t.Fatalf("%v Map(%d,%d) covers %d bytes", g, off, size, total)
		}
	}
}

// Property: RAID5 write amplification is bounded: every written strip
// piece yields at most 2 IOs on its data disk plus shared parity IOs, and
// a full-stripe write yields exactly dataDisks+1.
func TestWriteAmplificationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := Geometry{RAID5, 6, 2048}
	for iter := 0; iter < 500; iter++ {
		off := int64(rng.Intn(50000))
		size := int64(1 + rng.Intn(20000))
		ios := g.Map(off, size, true)
		pieces := g.split(off, size)
		rowsTouched := map[int64]bool{}
		for _, p := range pieces {
			rowsTouched[p.strip/int64(g.dataDisks())] = true
		}
		// Bound: per piece <= 2 data IOs; per row <= 2 parity IOs.
		maxIOs := 2*len(pieces) + 2*len(rowsTouched)
		if len(ios) > maxIOs {
			t.Fatalf("Map(%d,%d) produced %d IOs, bound %d", off, size, len(ios), maxIOs)
		}
		// Reads strictly precede writes.
		seenWrite := false
		for _, io := range ios {
			if io.Write {
				seenWrite = true
			} else if seenWrite {
				t.Fatalf("read after write in %+v", ios)
			}
		}
	}
}

// Property: within one phase, operations on the same disk never overlap
// byte ranges (overlap would mean double-counting service for one access).
func TestNoSameDiskOverlapWithinPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	geos := []Geometry{
		{RAID0, 4, 2048},
		{RAID5, 5, 2048},
		{RAID1, 4, 2048},
	}
	type span struct{ lo, hi int64 }
	check := func(g Geometry, ios []PhysIO) {
		byDisk := map[int][]span{}
		for _, io := range ios {
			s := span{io.Offset, io.Offset + io.Size}
			for _, prev := range byDisk[io.Disk] {
				if s.lo < prev.hi && prev.lo < s.hi {
					t.Fatalf("%v: overlapping ops on disk %d: %+v", g, io.Disk, ios)
				}
			}
			byDisk[io.Disk] = append(byDisk[io.Disk], s)
		}
	}
	for iter := 0; iter < 800; iter++ {
		g := geos[iter%len(geos)]
		off := int64(rng.Intn(100000))
		size := int64(1 + rng.Intn(30000))
		write := rng.Intn(2) == 0
		if g.Level == RAID5 && write {
			reads, writes := Phases(g.Map(off, size, true))
			check(g, reads)
			check(g, writes)
			continue
		}
		check(g, g.Map(off, size, write))
	}
}

// Property: coalescing preserves total bytes per (disk, kind).
func TestCoalescePreservesBytesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 300; iter++ {
		var raw []PhysIO
		off := map[int]int64{}
		for i := 0; i < 1+rng.Intn(20); i++ {
			d := rng.Intn(3)
			sz := int64(1 + rng.Intn(500))
			raw = append(raw, PhysIO{Disk: d, Offset: off[d], Size: sz, Kind: IOKind(rng.Intn(2))})
			if rng.Intn(2) == 0 {
				off[d] += sz // contiguous half the time
			} else {
				off[d] += sz + int64(1+rng.Intn(100))
			}
		}
		want := map[[2]int]int64{}
		for _, io := range raw {
			want[[2]int{io.Disk, int(io.Kind)}] += io.Size
		}
		got := map[[2]int]int64{}
		for _, io := range coalescePhys(append([]PhysIO(nil), raw...)) {
			got[[2]int{io.Disk, int(io.Kind)}] += io.Size
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("bytes changed for %v: %d -> %d", k, v, got[k])
			}
		}
	}
}

func BenchmarkRAID5MapSmallWrite(b *testing.B) {
	g := Geometry{RAID5, 5, 64 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Map(int64(i)*8192, 8192, true)
	}
}

func BenchmarkRAID5MapLargeSequential(b *testing.B) {
	g := Geometry{RAID5, 5, 64 << 10}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Map(int64(i%16)<<20, 1<<20, false)
	}
}
