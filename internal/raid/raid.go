// Package raid maps logical volume addresses onto the disks of a RAID
// group and expands writes into the physical operations parity maintenance
// requires. It is pure address arithmetic: the array layer turns the
// resulting PhysIO list into diskmodel requests.
//
// RAID-5 uses the left-symmetric layout (parity rotates across disks,
// starting at the last disk for row 0). Partial-stripe writes expand to
// read-modify-write (old data + old parity reads, new data + new parity
// writes); writes covering a full stripe row skip the pre-reads.
package raid

import (
	"fmt"
	"sort"
)

// Level selects the redundancy scheme of a group.
type Level int

// Supported RAID levels.
const (
	RAID0 Level = iota
	RAID5
	// RAID1 stripes across mirror pairs (RAID-10): even disk counts,
	// reads served by one side of the pair (alternating by row), writes
	// duplicated to both.
	RAID1
)

// String names the level.
func (l Level) String() string {
	switch l {
	case RAID0:
		return "RAID0"
	case RAID5:
		return "RAID5"
	case RAID1:
		return "RAID1"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// IOKind classifies a physical operation for statistics.
type IOKind int

// Physical operation kinds.
const (
	DataRead IOKind = iota
	DataWrite
	ParityRead
	ParityWrite
)

// String names the kind.
func (k IOKind) String() string {
	switch k {
	case DataRead:
		return "data-read"
	case DataWrite:
		return "data-write"
	case ParityRead:
		return "parity-read"
	case ParityWrite:
		return "parity-write"
	default:
		return fmt.Sprintf("IOKind(%d)", int(k))
	}
}

// PhysIO is one physical disk operation within a group.
type PhysIO struct {
	Disk   int // index within the group
	Offset int64
	Size   int64
	Write  bool
	Kind   IOKind
}

// Geometry describes a RAID group.
type Geometry struct {
	Level      Level
	Disks      int
	StripeUnit int64 // bytes per strip
}

// Validate reports the first configuration error.
func (g Geometry) Validate() error {
	switch {
	case g.Disks <= 0:
		return fmt.Errorf("raid: group needs at least one disk, got %d", g.Disks)
	case g.StripeUnit <= 0:
		return fmt.Errorf("raid: stripe unit must be positive, got %d", g.StripeUnit)
	case g.Level == RAID5 && g.Disks < 3:
		return fmt.Errorf("raid: RAID5 needs >= 3 disks, got %d", g.Disks)
	case g.Level == RAID1 && (g.Disks < 2 || g.Disks%2 != 0):
		return fmt.Errorf("raid: RAID1 needs an even disk count >= 2, got %d", g.Disks)
	case g.Level != RAID0 && g.Level != RAID5 && g.Level != RAID1:
		return fmt.Errorf("raid: unsupported level %v", g.Level)
	}
	return nil
}

// dataDisks returns the number of strips per row that hold data.
func (g Geometry) dataDisks() int {
	switch g.Level {
	case RAID5:
		return g.Disks - 1
	case RAID1:
		return g.Disks / 2
	default:
		return g.Disks
	}
}

// LogicalCapacity returns the usable bytes given a per-disk capacity,
// rounded down to whole stripe rows.
func (g Geometry) LogicalCapacity(diskCapacity int64) int64 {
	rows := diskCapacity / g.StripeUnit
	return rows * int64(g.dataDisks()) * g.StripeUnit
}

// parityDisk returns which disk holds parity for a stripe row
// (left-symmetric rotation). RAID0 has none (-1).
func (g Geometry) parityDisk(row int64) int {
	if g.Level != RAID5 {
		return -1
	}
	return int((int64(g.Disks) - 1 - row%int64(g.Disks)) % int64(g.Disks))
}

// stripLocation places logical strip index s at (disk, row). For RAID1
// it returns the read-primary side of the mirror pair, alternating by row
// to spread read load.
func (g Geometry) stripLocation(s int64) (disk int, row int64) {
	dd := int64(g.dataDisks())
	row = s / dd
	j := s % dd
	switch g.Level {
	case RAID5:
		p := int64(g.parityDisk(row))
		disk = int((p + 1 + j) % int64(g.Disks))
	case RAID1:
		disk = int(2*j) + int(row%2)
	default:
		disk = int(j)
	}
	return disk, row
}

// mirrorOf returns the other side of a RAID1 pair.
func (g Geometry) mirrorOf(disk int) int { return disk ^ 1 }

// piece is a fragment of the logical access within one strip.
type piece struct {
	strip  int64 // logical strip index
	within int64 // offset inside the strip
	size   int64
}

func (g Geometry) split(off, size int64) []piece {
	if off < 0 || size <= 0 {
		panic(fmt.Sprintf("raid: invalid access [%d,+%d)", off, size))
	}
	var out []piece
	for size > 0 {
		strip := off / g.StripeUnit
		within := off % g.StripeUnit
		n := g.StripeUnit - within
		if n > size {
			n = size
		}
		out = append(out, piece{strip: strip, within: within, size: n})
		off += n
		size -= n
	}
	return out
}

// Map translates a logical byte access into the physical operations it
// requires. Reads touch only data strips; RAID5 writes additionally touch
// parity. The result is ordered: all reads first, then all writes, since
// read-modify-write must complete its pre-reads before committing — the
// array layer preserves this two-phase structure.
func (g Geometry) Map(off, size int64, write bool) []PhysIO {
	pieces := g.split(off, size)
	if !write {
		out := make([]PhysIO, 0, len(pieces))
		for _, p := range pieces {
			disk, row := g.stripLocation(p.strip)
			out = append(out, PhysIO{
				Disk:   disk,
				Offset: row*g.StripeUnit + p.within,
				Size:   p.size,
				Kind:   DataRead,
			})
		}
		return coalescePhys(out)
	}
	if g.Level == RAID0 {
		out := make([]PhysIO, 0, len(pieces))
		for _, p := range pieces {
			disk, row := g.stripLocation(p.strip)
			out = append(out, PhysIO{
				Disk:   disk,
				Offset: row*g.StripeUnit + p.within,
				Size:   p.size,
				Write:  true,
				Kind:   DataWrite,
			})
		}
		return coalescePhys(out)
	}
	if g.Level == RAID1 {
		out := make([]PhysIO, 0, 2*len(pieces))
		for _, p := range pieces {
			disk, row := g.stripLocation(p.strip)
			phys := row*g.StripeUnit + p.within
			out = append(out,
				PhysIO{Disk: disk, Offset: phys, Size: p.size, Write: true, Kind: DataWrite},
				PhysIO{Disk: g.mirrorOf(disk), Offset: phys, Size: p.size, Write: true, Kind: DataWrite},
			)
		}
		return coalescePhys(out)
	}
	return g.mapRAID5Write(pieces)
}

// coalescePhys merges physically contiguous operations on the same disk
// with the same kind — a long sequential logical run lands as one streamed
// transfer per disk instead of a strip-sized I/O per row. The input is
// ordered by logical address, so per-disk operations arrive in ascending
// physical order already; a single stable pass suffices and preserves the
// read-before-write phase structure.
func coalescePhys(ios []PhysIO) []PhysIO {
	if len(ios) < 2 {
		return ios
	}
	out := ios[:0]
	last := map[int]int{} // disk -> index in out of its latest op
	for _, io := range ios {
		if li, ok := last[io.Disk]; ok {
			prev := &out[li]
			if prev.Kind == io.Kind && prev.Offset+prev.Size == io.Offset {
				prev.Size += io.Size
				continue
			}
		}
		out = append(out, io)
		last[io.Disk] = len(out) - 1
	}
	return out
}

// rowAccess accumulates the pieces of one stripe row.
type rowAccess struct {
	row    int64
	pieces []piece
	bytes  int64
	// union of within-strip ranges, for sizing the parity I/O
	lo, hi int64
}

func (g Geometry) mapRAID5Write(pieces []piece) []PhysIO {
	rows := map[int64]*rowAccess{}
	var order []int64
	dd := int64(g.dataDisks())
	for _, p := range pieces {
		row := p.strip / dd
		ra := rows[row]
		if ra == nil {
			ra = &rowAccess{row: row, lo: p.within, hi: p.within + p.size}
			rows[row] = ra
			order = append(order, row)
		}
		ra.pieces = append(ra.pieces, p)
		ra.bytes += p.size
		if p.within < ra.lo {
			ra.lo = p.within
		}
		if p.within+p.size > ra.hi {
			ra.hi = p.within + p.size
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var reads, writes []PhysIO
	for _, rowIdx := range order {
		ra := rows[rowIdx]
		pd := g.parityDisk(ra.row)
		fullStripe := ra.bytes == dd*g.StripeUnit
		for _, p := range ra.pieces {
			disk, row := g.stripLocation(p.strip)
			phys := row*g.StripeUnit + p.within
			if !fullStripe {
				reads = append(reads, PhysIO{Disk: disk, Offset: phys, Size: p.size, Kind: DataRead})
			}
			writes = append(writes, PhysIO{Disk: disk, Offset: phys, Size: p.size, Write: true, Kind: DataWrite})
		}
		parityOff := ra.row*g.StripeUnit + ra.lo
		paritySize := ra.hi - ra.lo
		if fullStripe {
			parityOff = ra.row * g.StripeUnit
			paritySize = g.StripeUnit
		} else {
			reads = append(reads, PhysIO{Disk: pd, Offset: parityOff, Size: paritySize, Kind: ParityRead})
		}
		writes = append(writes, PhysIO{Disk: pd, Offset: parityOff, Size: paritySize, Write: true, Kind: ParityWrite})
	}
	return append(coalescePhys(reads), coalescePhys(writes)...)
}

// Phases splits a Map result into its pre-read and write phases. The
// second phase must not start before the first completes.
func Phases(ios []PhysIO) (reads, writes []PhysIO) {
	for i, io := range ios {
		if io.Write {
			return ios[:i], ios[i:]
		}
	}
	return ios, nil
}
