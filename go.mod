module hibernator

go 1.22
