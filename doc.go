// Package hibernator is a reproduction of "Hibernator: Helping Disk Arrays
// Sleep through the Winter" (Zhu, Chen, Tan, Zhou, Keeton, Wilkes; SOSP 2005).
//
// Hibernator is a disk-array energy-management system that combines
// multi-speed disks, a coarse-grained epoch-based algorithm for deciding
// which disks spin at which speeds (CR), automatic migration of hot data to
// fast disks, and an automatic performance boost that spins every disk to
// full speed when a response-time goal is at risk.
//
// The repository is organised as a simulator plus policies:
//
//   - internal/simevent: discrete-event engine
//   - internal/diskmodel: multi-speed disk mechanical + power model
//   - internal/raid, internal/cache, internal/array: the array substrate
//   - internal/trace: synthetic OLTP- and Cello-like workload generators
//   - internal/policy: Base, TPM, DRPM, PDC and MAID baselines
//   - internal/hibernator: the paper's contribution
//   - internal/fault: deterministic fault schedules and ambient error rates
//   - internal/sim: the harness that wires everything together
//   - internal/obs: opt-in metrics registry, decision trace and exporters
//   - internal/runner: bounded deterministic worker pool for parallel runs
//   - internal/experiments: one scenario per reconstructed table/figure
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-versus-measured results and OBSERVABILITY.md for the metrics and
// trace-stream schema. Binaries live under cmd/, runnable examples under
// examples/.
package hibernator
