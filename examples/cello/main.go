// Cello file-server scenario: a strongly diurnal, bursty workload (quiet
// nights, busy days) over a simulated day. The example prints Hibernator's
// speed decisions over time — you can watch the array slow down through
// the night trough and speed back up for the day — alongside the windowed
// response time.
//
// Run with: go run ./examples/cello
package main

import (
	"fmt"
	"log"
	"strings"

	"hibernator/internal/diskmodel"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

const day = 28800.0 // a compressed 8-hour "day"

func main() {
	cfg := sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             4,
		GroupDisks:         4,
		Level:              raid.RAID5,
		CacheBytes:         256 << 20,
		RespGoal:           0.020,
		SampleEvery:        day / 32,
		Seed:               5,
		ExpectedRotLatency: true,
	}
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		log.Fatal(err)
	}
	workload := func() trace.Source {
		src, err := trace.NewCello(trace.CelloConfig{
			Seed:        9,
			VolumeBytes: vol,
			Duration:    day,
			DayPeriod:   day,
			NightRate:   0.02,
			DayRate:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		return src
	}

	base, err := sim.Run(cfg, workload(), policy.NewBase(), day)
	if err != nil {
		log.Fatal(err)
	}
	ctrl := hibernator.New(hibernator.Options{Epoch: day / 8})
	hib, err := sim.Run(cfg, workload(), ctrl, day)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("time     resp(ms)  full-speed disks (of 16)")
	for _, p := range hib.Series {
		bar := strings.Repeat("#", p.FullSpeedDisks)
		fmt.Printf("%6.0fs  %7.2f  %-16s %d\n", p.T, p.WindowMeanResp*1000, bar, p.FullSpeedDisks)
	}
	fmt.Printf("\nBase:       %8.1f kJ, mean %.2f ms\n", base.Energy/1000, base.MeanResp*1000)
	fmt.Printf("Hibernator: %8.1f kJ, mean %.2f ms (savings %.1f%%, %d epochs, %d boosts, %d migrations)\n",
		hib.Energy/1000, hib.MeanResp*1000, hib.SavingsVs(base)*100,
		ctrl.Epochs(), ctrl.BoostCount(), hib.Migrations)
}
