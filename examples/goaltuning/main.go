// Goal tuning: how much energy can the array save at each response-time
// goal? This is the administrator's capacity-planning question — Hibernator
// turns a latency budget into an energy budget. Reproduces the shape of
// the paper's savings-vs-goal analysis (experiment F5) as a standalone
// program.
//
// Run with: go run ./examples/goaltuning
package main

import (
	"fmt"
	"log"
	"strings"

	"hibernator/internal/diskmodel"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

const duration = 7200.0

func main() {
	mkCfg := func(multi bool, goal float64) sim.Config {
		spec := diskmodel.SingleSpeedUltrastar()
		if multi {
			spec = diskmodel.MultiSpeedUltrastar(5, 3000)
		}
		return sim.Config{
			Spec:               spec,
			Groups:             4,
			GroupDisks:         2,
			Level:              raid.RAID0,
			CacheBytes:         128 << 20,
			RespGoal:           goal,
			Seed:               11,
			ExpectedRotLatency: true,
		}
	}
	vol, err := sim.LogicalBytes(mkCfg(true, 0))
	if err != nil {
		log.Fatal(err)
	}
	workload := func() trace.Source {
		src, err := trace.NewOLTP(trace.OLTPConfig{
			Seed: 13, VolumeBytes: vol, Duration: duration, MaxRate: 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		return src
	}

	base, err := sim.Run(mkCfg(false, 0), workload(), policy.NewBase(), duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Base: mean %.2f ms, %.1f kJ\n\n", base.MeanResp*1000, base.Energy/1000)
	fmt.Println("goal      savings   mean(ms)  violations")
	for _, mul := range []float64{1.1, 1.2, 1.4, 1.7, 2.0, 2.5, 3.0} {
		goal := mul * base.MeanResp
		hib, err := sim.Run(mkCfg(true, goal), workload(),
			hibernator.New(hibernator.Options{Epoch: duration / 4}), duration)
		if err != nil {
			log.Fatal(err)
		}
		savings := hib.SavingsVs(base)
		bar := strings.Repeat("#", int(savings*50+0.5))
		fmt.Printf("%4.1fx  %7.1f%%  %9.2f  %9.1f%%  %s\n",
			mul, savings*100, hib.MeanResp*1000, hib.GoalViolationFrac*100, bar)
	}
	fmt.Println("\nLooser goals let CR park more disks at lower speeds: latency budget -> energy budget.")
}
