// Failure drill: Hibernator keeps managing energy while a RAID-5 group
// loses a disk mid-run, serves in degraded mode (reconstructing reads from
// the survivors), and rebuilds onto a hot spare in the background.
//
// Run with: go run ./examples/failure
package main

import (
	"fmt"
	"log"

	"hibernator/internal/diskmodel"
	"hibernator/internal/hibernator"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

const (
	duration  = 9000.0
	failAt    = 1500.0
	rebuildAt = 2400.0
)

// drillController wraps Hibernator and injects the fault schedule.
type drillController struct {
	inner   sim.Controller
	env     *sim.Env
	rebuilt float64
}

func (d *drillController) Name() string { return d.inner.Name() }

func (d *drillController) Init(env *sim.Env) {
	d.env = env
	d.inner.Init(env)
	env.Engine.Schedule(failAt, func() {
		if err := env.Array.FailDisk(1, 2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%5.0f  disk 2 of group 1 FAILED — group now degraded\n", env.Engine.Now())
	})
	env.Engine.Schedule(rebuildAt, func() {
		err := env.Array.Rebuild(1, 2, 0, true, func() {
			d.rebuilt = env.Engine.Now()
			fmt.Printf("t=%5.0f  rebuild complete — spare installed, group healthy\n", d.rebuilt)
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=%5.0f  background rebuild to hot spare started\n", env.Engine.Now())
	})
}

func main() {
	cfg := sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             4,
		GroupDisks:         4,
		Level:              raid.RAID5,
		CacheBytes:         256 << 20,
		SpareDisks:         1,
		RespGoal:           0.015,
		SampleEvery:        duration / 18,
		Seed:               17,
		ExpectedRotLatency: true,
	}
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := trace.NewOLTP(trace.OLTPConfig{
		Seed: 19, VolumeBytes: vol, Duration: duration, MaxRate: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	drill := &drillController{inner: hibernator.New(hibernator.Options{Epoch: duration / 6})}
	res, err := sim.Run(cfg, src, drill, duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntime     resp(ms)  full-speed disks")
	for _, p := range res.Series {
		marker := ""
		switch {
		case p.T >= failAt && p.T < rebuildAt:
			marker = "  <- degraded"
		case p.T >= rebuildAt && (drill.rebuilt == 0 || p.T < drill.rebuilt):
			marker = "  <- rebuilding"
		}
		fmt.Printf("%6.0fs  %8.2f  %d%s\n", p.T, p.WindowMeanResp*1000, p.FullSpeedDisks, marker)
	}
	fmt.Printf("\nmean response %.2f ms (goal %.0f ms), energy %.1f kJ, lost IOs %d, rebuilds %d\n",
		res.MeanResp*1000, cfg.RespGoal*1000, res.Energy/1000,
		drill.env.Array.LostIOs(), drill.env.Array.Rebuilds())
}
