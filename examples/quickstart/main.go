// Quickstart: simulate a small disk array under no power management and
// under Hibernator, and compare energy and response time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hibernator/internal/diskmodel"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

func main() {
	// 1. Describe the array: 8 multi-speed disks (5 RPM levels) as two
	// RAID-5 groups behind a 128 MiB write-back cache.
	cfg := sim.Config{
		Spec:               diskmodel.MultiSpeedUltrastar(5, 3000),
		Groups:             2,
		GroupDisks:         4,
		Level:              raid.RAID5,
		CacheBytes:         128 << 20,
		RespGoal:           0.015, // 15 ms mean response-time goal
		Seed:               42,
		ExpectedRotLatency: true,
	}

	// 2. Size a workload against the array's logical volume.
	vol, err := sim.LogicalBytes(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const duration = 3600.0 // one simulated hour
	workload := func() trace.Source {
		src, err := trace.NewOLTP(trace.OLTPConfig{
			Seed:        7,
			VolumeBytes: vol,
			Duration:    duration,
			MaxRate:     40, // light load: room to save energy
		})
		if err != nil {
			log.Fatal(err)
		}
		return src
	}

	// 3. Run Base (no power management), then Hibernator.
	base, err := sim.Run(cfg, workload(), policy.NewBase(), duration)
	if err != nil {
		log.Fatal(err)
	}
	hib, err := sim.Run(cfg, workload(),
		hibernator.New(hibernator.Options{Epoch: duration / 6}), duration)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Compare.
	fmt.Printf("%-12s %12s %14s %12s\n", "scheme", "energy (kJ)", "mean resp (ms)", "violations")
	for _, r := range []*sim.Result{base, hib} {
		fmt.Printf("%-12s %12.1f %14.2f %11.1f%%\n",
			r.Scheme, r.Energy/1000, r.MeanResp*1000, r.GoalViolationFrac*100)
	}
	fmt.Printf("\nHibernator saved %.1f%% of the array's energy while holding the %.0f ms goal.\n",
		hib.SavingsVs(base)*100, cfg.RespGoal*1000)
}
