// OLTP bake-off: all six schemes from the paper on a database-style
// workload (small random I/O, Zipf-skewed popularity, diurnal intensity),
// 16 data disks in RAID-5, reproducing the shape of the paper's OLTP
// figures in miniature.
//
// Run with: go run ./examples/oltp
package main

import (
	"fmt"
	"log"

	"hibernator/internal/diskmodel"
	"hibernator/internal/dist"
	"hibernator/internal/hibernator"
	"hibernator/internal/policy"
	"hibernator/internal/raid"
	"hibernator/internal/sim"
	"hibernator/internal/trace"
)

const duration = 7200.0 // two simulated hours

func config(multiSpeed bool, spares int, goal float64) sim.Config {
	spec := diskmodel.SingleSpeedUltrastar()
	if multiSpeed {
		spec = diskmodel.MultiSpeedUltrastar(5, 3000)
	}
	return sim.Config{
		Spec:               spec,
		Groups:             4,
		GroupDisks:         4,
		Level:              raid.RAID5,
		CacheBytes:         256 << 20,
		SpareDisks:         spares,
		RespGoal:           goal,
		Seed:               1,
		ExpectedRotLatency: true,
	}
}

func main() {
	vol, err := sim.LogicalBytes(config(true, 0, 0))
	if err != nil {
		log.Fatal(err)
	}
	workload := func() trace.Source {
		src, err := trace.NewOLTP(trace.OLTPConfig{
			Seed:        3,
			VolumeBytes: vol,
			Duration:    duration,
			Rate:        dist.DiurnalRate(15, 80, duration, 0.5),
			MaxRate:     80,
		})
		if err != nil {
			log.Fatal(err)
		}
		return src
	}

	// Base first: its mean response time fixes the goal for everyone else.
	base, err := sim.Run(config(false, 0, 0), workload(), policy.NewBase(), duration)
	if err != nil {
		log.Fatal(err)
	}
	goal := 1.3 * base.MeanResp
	fmt.Printf("Base mean response %.2f ms -> goal %.2f ms (1.3x)\n\n", base.MeanResp*1000, goal*1000)

	epoch := duration / 4
	type entry struct {
		name  string
		multi bool
		spare int
		ctrl  sim.Controller
	}
	entries := []entry{
		{"TPM", false, 0, policy.NewTPM(0)},
		{"DRPM", true, 0, policy.NewDRPM()},
		{"PDC", false, 0, func() sim.Controller { p := policy.NewPDC(); p.Epoch = epoch; return p }()},
		{"MAID", false, 2, policy.NewMAID()},
		{"Hibernator", true, 0, hibernator.New(hibernator.Options{Epoch: epoch})},
	}

	fmt.Printf("%-12s %12s %9s %15s %11s\n", "scheme", "energy (kJ)", "savings", "mean resp (ms)", "violations")
	fmt.Printf("%-12s %12.1f %8.1f%% %15.2f %10.1f%%\n",
		"Base", base.Energy/1000, 0.0, base.MeanResp*1000, base.GoalViolationFrac*100)
	for _, e := range entries {
		res, err := sim.Run(config(e.multi, e.spare, goal), workload(), e.ctrl, duration)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.1f %8.1f%% %15.2f %10.1f%%\n",
			e.name, res.Energy/1000, res.SavingsVs(base)*100, res.MeanResp*1000, res.GoalViolationFrac*100)
	}
	fmt.Println("\nExpected shape: TPM saves little (no long idle gaps); DRPM/PDC/MAID save")
	fmt.Println("but violate the goal or degrade latency; Hibernator saves while meeting it.")
}
