package hibernator_test

import (
	"strconv"
	"testing"

	"hibernator/internal/experiments"
	"hibernator/internal/report"
)

// benchScale keeps each experiment benchmark to a few hundred simulated
// seconds per run; `go run ./cmd/hibexp` regenerates the full-scale
// results recorded in EXPERIMENTS.md.
const benchScale = 0.05

// One benchmark per reconstructed table/figure. Each iteration uses a
// seed unique to this benchmark AND iteration, so the memoized bake-offs
// can never short-circuit the work (a cache hit would make an iteration
// look instant, the framework would ramp b.N, and the later uncached
// iterations would stall the run for minutes).
func benchExperiment(b *testing.B, id string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var space int64
	for _, c := range id {
		space = space*131 + int64(c)
	}
	b.ReportAllocs()
	var tables []*report.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = e.Run(experiments.Opts{Scale: benchScale, Seed: space*1_000_000 + int64(i+1)})
		if err != nil {
			b.Fatal(err)
		}
	}
	rows := 0
	for _, t := range tables {
		rows += len(t.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkT1(b *testing.B)  { benchExperiment(b, "T1") }
func BenchmarkT2(b *testing.B)  { benchExperiment(b, "T2") }
func BenchmarkT3(b *testing.B)  { benchExperiment(b, "T3") }
func BenchmarkF1(b *testing.B)  { benchExperiment(b, "F1") }
func BenchmarkF2(b *testing.B)  { benchExperiment(b, "F2") }
func BenchmarkF3(b *testing.B)  { benchExperiment(b, "F3") }
func BenchmarkF4(b *testing.B)  { benchExperiment(b, "F4") }
func BenchmarkF5(b *testing.B)  { benchExperiment(b, "F5") }
func BenchmarkF6(b *testing.B)  { benchExperiment(b, "F6") }
func BenchmarkF7(b *testing.B)  { benchExperiment(b, "F7") }
func BenchmarkF8(b *testing.B)  { benchExperiment(b, "F8") }
func BenchmarkF9(b *testing.B)  { benchExperiment(b, "F9") }
func BenchmarkF10(b *testing.B) { benchExperiment(b, "F10") }
func BenchmarkF11(b *testing.B) { benchExperiment(b, "F11") }
func BenchmarkX1(b *testing.B)  { benchExperiment(b, "X1") }
func BenchmarkX2(b *testing.B)  { benchExperiment(b, "X2") }
func BenchmarkX3(b *testing.B)  { benchExperiment(b, "X3") }
func BenchmarkX4(b *testing.B)  { benchExperiment(b, "X4") }

// BenchmarkSimulatorThroughput measures raw simulator speed: simulated
// requests per second of wall time on the bake-off geometry, the figure
// that bounds how long full-scale experiments take.
func BenchmarkSimulatorThroughput(b *testing.B) {
	e, ok := experiments.ByID("T2")
	if !ok {
		b.Fatal("T2 missing")
	}
	b.ReportAllocs()
	var reqs int
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(experiments.Opts{Scale: 0.1, Seed: 777_000_000 + int64(i+1)})
		if err != nil {
			b.Fatal(err)
		}
		reqs = 0
		for _, row := range tables[0].Rows {
			n, err := strconv.Atoi(row[1])
			if err != nil {
				b.Fatalf("bad request count %q", row[1])
			}
			reqs += n
		}
	}
	b.ReportMetric(float64(reqs), "trace-requests")
}
